package jobs

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/spider"
)

// stubTranslator is a fast deterministic translator for lifecycle tests.
type stubTranslator struct {
	delay time.Duration
	// gate, when non-nil, blocks every Translate call until it is closed.
	gate chan struct{}
}

func (s *stubTranslator) Name() string { return "stub" }

func (s *stubTranslator) Translate(e *spider.Example) core.Translation {
	if s.gate != nil {
		<-s.gate
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return core.Translation{
		SQL:          fmt.Sprintf("SELECT %d", e.ID),
		InputTokens:  100 + e.ID%13,
		OutputTokens: 10 + e.ID%3,
		DemosUsed:    1 + e.ID%4,
	}
}

func stubExamples(n, base int) []*spider.Example {
	out := make([]*spider.Example, n)
	for i := range out {
		out[i] = &spider.Example{ID: base + i}
	}
	return out
}

func shutdownOrFail(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitState polls until the job reaches a terminal state.
func waitFinished(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State.Finished() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

func TestJobLifecycle(t *testing.T) {
	tr := &stubTranslator{}
	m := NewManager(tr, Config{Runners: 2, Queue: 8, Workers: 3})
	defer shutdownOrFail(t, m)

	ex := stubExamples(10, 0)
	st, err := m.Submit(Request{Examples: ex, Label: "first", TaskIDs: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Total != 10 || st.ID == "" {
		t.Fatalf("bad initial snapshot: %+v", st)
	}
	if st.Results != nil {
		t.Error("unfinished snapshot should not expose results")
	}

	final := waitFinished(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s, want done: %+v", final.State, final)
	}
	if final.Completed != 10 || final.Stats.Completed != 10 {
		t.Errorf("completed %d stats %+v", final.Completed, final.Stats)
	}
	if final.Label != "first" || len(final.TaskIDs) != 10 {
		t.Errorf("label/task ids lost: %+v", final)
	}
	if final.Started.IsZero() || final.Finished.IsZero() || final.Created.IsZero() {
		t.Errorf("lifecycle timestamps missing: %+v", final)
	}

	// Results byte-identical to a sequential engine run.
	want, wantStats, err := core.NewEngine(tr, 1).TranslateBatch(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Results, want) {
		t.Errorf("job results differ from sequential engine run")
	}
	if !reflect.DeepEqual(final.Stats, wantStats) {
		t.Errorf("job stats %+v != sequential stats %+v", final.Stats, wantStats)
	}
	for i, d := range final.Done {
		if !d {
			t.Errorf("done flag %d unset on a done job", i)
		}
	}
}

// TestConcurrentJobsMatchSequential is the acceptance gate: N jobs running
// concurrently across runners each produce exactly the results of a
// sequential engine run over their own examples. Run with -race.
func TestConcurrentJobsMatchSequential(t *testing.T) {
	tr := &stubTranslator{delay: 100 * time.Microsecond}
	m := NewManager(tr, Config{Runners: 4, Queue: 32, Workers: 4})
	defer shutdownOrFail(t, m)

	const jobs = 12
	ids := make([]string, jobs)
	batches := make([][]*spider.Example, jobs)
	for i := 0; i < jobs; i++ {
		batches[i] = stubExamples(8+i, i*100)
		st, err := m.Submit(Request{Examples: batches[i]})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		final := waitFinished(t, m, id)
		if final.State != StateDone {
			t.Fatalf("job %d state %s", i, final.State)
		}
		want, _, _ := core.NewEngine(tr, 1).TranslateBatch(context.Background(), batches[i])
		if !reflect.DeepEqual(final.Results, want) {
			t.Errorf("job %d results differ from sequential run", i)
		}
	}
	c := m.Stats()
	if c.Completed != jobs || c.Submitted != jobs {
		t.Errorf("counters: %+v", c)
	}
}

// TestRealPipelineJob runs one job through the actual PURPLE pipeline and
// checks the async path reproduces the synchronous translations exactly.
func TestRealPipelineJob(t *testing.T) {
	c := spider.GenerateSmall(13, 0.04)
	cfg := core.DefaultConfig()
	cfg.Consistency = 5
	p := core.New(c.Train.Examples, llm.NewSim(llm.ChatGPT), cfg)
	ex := c.Dev.Examples
	if len(ex) > 12 {
		ex = ex[:12]
	}
	m := NewManager(p, Config{Runners: 2, Queue: 4, Workers: 4})
	defer shutdownOrFail(t, m)
	st, err := m.Submit(Request{Examples: ex})
	if err != nil {
		t.Fatal(err)
	}
	final := waitFinished(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s", final.State)
	}
	for i, e := range ex {
		if want := p.Translate(e); !reflect.DeepEqual(final.Results[i], want) {
			t.Errorf("result %d differs from synchronous pipeline", i)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{})
	defer shutdownOrFail(t, m)
	if _, err := m.Submit(Request{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty submit: %v", err)
	}
	if _, err := m.Submit(Request{Examples: stubExamples(2, 0), TaskIDs: []int{1}}); err == nil {
		t.Error("mismatched task ids accepted")
	}
}

func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	tr := &stubTranslator{gate: gate}
	m := NewManager(tr, Config{Runners: 1, Queue: 2, Workers: 1})

	// First job occupies the single runner (blocked on the gate); the next
	// two fill the queue; the fourth must be rejected.
	first, err := m.Submit(Request{Examples: stubExamples(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{first.ID}
	// Wait for the runner to pick up the first job so the queue is empty
	// before filling its two slots.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := m.Get(first.ID); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		st, err := m.Submit(Request{Examples: stubExamples(1, i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := m.Submit(Request{Examples: stubExamples(1, 99)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if c := m.Stats(); c.Rejected != 1 || c.QueueDepth != 2 || c.Running != 1 {
		t.Errorf("counters: %+v", c)
	}
	if c := m.Stats(); c.QueuePeak != 2 {
		t.Errorf("QueuePeak = %d, want 2 (full queue)", c.QueuePeak)
	}
	close(gate)
	for _, id := range ids {
		if st := waitFinished(t, m, id); st.State != StateDone {
			t.Errorf("job %s: %s", id, st.State)
		}
	}
	// With the backlog drained, admission works again — and the high-water
	// mark remembers the earlier saturation.
	if _, err := m.Submit(Request{Examples: stubExamples(1, 100)}); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
	if c := m.Stats(); c.QueuePeak != 2 {
		t.Errorf("QueuePeak after drain = %d, want the sticky high-water 2", c.QueuePeak)
	}
	shutdownOrFail(t, m)
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(&stubTranslator{gate: gate}, Config{Runners: 1, Queue: 4})
	blocker, err := m.Submit(Request{Examples: stubExamples(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Request{Examples: stubExamples(5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled || st.Completed != 0 {
		t.Fatalf("cancelled queued job: %+v", st)
	}
	close(gate)
	if st := waitFinished(t, m, blocker.ID); st.State != StateDone {
		t.Errorf("blocker: %s", st.State)
	}
	// The cancelled job must never have run.
	if st, _ := m.Get(queued.ID); st.State != StateCancelled || st.Completed != 0 {
		t.Errorf("queued job ran after cancel: %+v", st)
	}
	if c := m.Stats(); c.Cancelled != 1 {
		t.Errorf("cancelled counter: %+v", c)
	}
	shutdownOrFail(t, m)
}

// TestCancelRunningJobKeepsPartialResults cancels mid-run and checks the
// checkpoint: some but not all examples completed, stats covering exactly
// the completed slots, and done-flags consistent with results.
func TestCancelRunningJobKeepsPartialResults(t *testing.T) {
	tr := &stubTranslator{delay: 3 * time.Millisecond}
	m := NewManager(tr, Config{Runners: 1, Queue: 2, Workers: 1})
	defer shutdownOrFail(t, m)

	st, err := m.Submit(Request{Examples: stubExamples(500, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a few examples have completed, then cancel.
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, _ := m.Get(st.ID)
		if cur.Completed >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFinished(t, m, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if final.Completed < 3 || final.Completed >= final.Total {
		t.Fatalf("partial completion out of range: %d of %d", final.Completed, final.Total)
	}
	if final.Stats.Completed != final.Completed {
		t.Errorf("stats.Completed %d != Completed %d", final.Stats.Completed, final.Completed)
	}
	nDone := 0
	for i, d := range final.Done {
		if d {
			nDone++
			if final.Results[i].SQL == "" {
				t.Errorf("done slot %d has empty result", i)
			}
		} else if final.Results[i].SQL != "" {
			t.Errorf("undone slot %d has a result", i)
		}
	}
	if nDone != final.Completed {
		t.Errorf("done flags %d != completed %d", nDone, final.Completed)
	}
}

func TestGetUnknownJob(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{})
	defer shutdownOrFail(t, m)
	if _, err := m.Get("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: %v", err)
	}
}

func TestListOrdering(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{Runners: 2, Queue: 16})
	defer shutdownOrFail(t, m)
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := m.Submit(Request{Examples: stubExamples(2, i*10)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ls := m.List()
	if len(ls) != 5 {
		t.Fatalf("list length %d", len(ls))
	}
	for i, st := range ls {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
}

func TestTTLGarbageCollection(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{TTL: time.Hour})
	defer shutdownOrFail(t, m)
	st, err := m.Submit(Request{Examples: stubExamples(2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, m, st.ID)
	if n := m.GC(time.Now()); n != 0 {
		t.Errorf("fresh job collected: %d", n)
	}
	if n := m.GC(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Errorf("stale job not collected: %d", n)
	}
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("collected job still queryable: %v", err)
	}
}

func TestGCSkipsUnfinishedJobs(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(&stubTranslator{gate: gate}, Config{Runners: 1, Queue: 4, TTL: time.Nanosecond})
	st, err := m.Submit(Request{Examples: stubExamples(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.GC(time.Now().Add(time.Hour)); n != 0 {
		t.Errorf("unfinished job collected: %d", n)
	}
	close(gate)
	waitFinished(t, m, st.ID)
	shutdownOrFail(t, m)
}

// TestShutdownDrains proves the graceful-drain contract: admission stops,
// queued jobs are cancelled, running jobs finish, and completed results
// survive.
func TestShutdownDrains(t *testing.T) {
	tr := &stubTranslator{delay: time.Millisecond}
	m := NewManager(tr, Config{Runners: 1, Queue: 8, Workers: 1})
	running, err := m.Submit(Request{Examples: stubExamples(20, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Give the runner a moment to pick it up, then queue one more.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := m.Get(running.ID); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(Request{Examples: stubExamples(5, 100)})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := m.Submit(Request{Examples: stubExamples(1, 0)}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: %v", err)
	}
	ran, _ := m.Get(running.ID)
	if ran.State != StateDone || ran.Completed != 20 {
		t.Errorf("running job not drained to completion: %+v", ran)
	}
	q, _ := m.Get(queued.ID)
	if q.State != StateCancelled || q.Completed != 0 {
		t.Errorf("queued job not cancelled at shutdown: %+v", q)
	}
	// Idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestShutdownDeadlineCancelsRunning forces the drain deadline and checks
// the running job is cancelled with its partial results checkpointed.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	tr := &stubTranslator{delay: 5 * time.Millisecond}
	m := NewManager(tr, Config{Runners: 1, Queue: 2, Workers: 1})
	st, err := m.Submit(Request{Examples: stubExamples(2000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cur, _ := m.Get(st.ID); cur.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	final, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Errorf("state %s, want cancelled", final.State)
	}
	if final.Completed == 0 || final.Completed >= final.Total {
		t.Errorf("expected partial completion, got %d of %d", final.Completed, final.Total)
	}
}

// TestSubmitConcurrent hammers admission from many goroutines; with -race
// this doubles as the admission-path race test.
func TestSubmitConcurrent(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{Runners: 4, Queue: 1024})
	defer shutdownOrFail(t, m)
	var wg sync.WaitGroup
	const n = 50
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Submit(Request{Examples: stubExamples(3, i*10)})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" {
			continue
		}
		if seen[id] {
			t.Errorf("duplicate job id %s", id)
		}
		seen[id] = true
		if st := waitFinished(t, m, id); st.State != StateDone {
			t.Errorf("job %s: %s", id, st.State)
		}
	}
	if c := m.Stats(); c.Completed != n {
		t.Errorf("completed %d of %d", c.Completed, n)
	}
}

// TestCancelQueuedFreesAdmissionSlot: cancelling a queued job must free its
// queue slot immediately — a queue full of cancelled jobs may not 429.
func TestCancelQueuedFreesAdmissionSlot(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(&stubTranslator{gate: gate}, Config{Runners: 1, Queue: 1})
	blocker, err := m.Submit(Request{Examples: stubExamples(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := m.Get(blocker.ID); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(Request{Examples: stubExamples(1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Examples: stubExamples(1, 20)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full: %v", err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if c := m.Stats(); c.QueueDepth != 0 {
		t.Errorf("queue depth %d after cancelling the only queued job", c.QueueDepth)
	}
	// The freed slot admits a new job while the runner is still blocked.
	readmitted, err := m.Submit(Request{Examples: stubExamples(1, 30)})
	if err != nil {
		t.Fatalf("slot not freed by cancel: %v", err)
	}
	close(gate)
	if st := waitFinished(t, m, readmitted.ID); st.State != StateDone {
		t.Errorf("readmitted job: %s", st.State)
	}
	shutdownOrFail(t, m)
}

// TestRunJobs pins the generic-work path: a Run job rides the queue,
// lifecycle and counters without a translator.
func TestRunJobs(t *testing.T) {
	m := NewManager(nil, Config{Runners: 1, Queue: 4})
	defer shutdownOrFail(t, m)

	done := make(chan struct{})
	st, err := m.Submit(Request{Label: "build", Run: func(ctx context.Context) error {
		close(done)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run job never executed")
	}
	final := waitFinished(t, m, st.ID)
	if final.State != StateDone || final.Label != "build" || final.Total != 0 {
		t.Fatalf("run job: %+v", final)
	}

	// A failing Run finishes failed with its error recorded.
	st, err = m.Submit(Request{Run: func(ctx context.Context) error {
		return fmt.Errorf("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitFinished(t, m, st.ID); final.State != StateFailed || final.Err != "boom" {
		t.Fatalf("failing run job: %+v", final)
	}

	// A Run that observes cancellation finishes cancelled.
	gate := make(chan struct{})
	st, err = m.Submit(Request{Run: func(ctx context.Context) error {
		close(gate)
		<-ctx.Done()
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if final := waitFinished(t, m, st.ID); final.State != StateCancelled {
		t.Fatalf("cancelled run job: %+v", final)
	}

	// Neither Examples nor Run is still an empty request.
	if _, err := m.Submit(Request{}); err != ErrEmpty {
		t.Fatalf("empty submit: %v, want ErrEmpty", err)
	}
}

// TestTranslatorOverride pins the per-job translator: one manager serves
// jobs against different pipelines (the multi-tenant catalog's pattern).
func TestTranslatorOverride(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{Runners: 1, Queue: 4})
	defer shutdownOrFail(t, m)

	override := &offsetTranslator{offset: 1000}
	st, err := m.Submit(Request{Examples: stubExamples(3, 0), Translator: override})
	if err != nil {
		t.Fatal(err)
	}
	final := waitFinished(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("job: %+v", final)
	}
	for i, res := range final.Results {
		want := fmt.Sprintf("SELECT %d", 1000+i)
		if res.SQL != want {
			t.Errorf("result %d = %q, want %q (override not used)", i, res.SQL, want)
		}
	}
	if len(final.Examples) != 3 {
		t.Errorf("finished status echoes %d examples, want 3", len(final.Examples))
	}

	// Without the override the manager default still applies.
	st, err = m.Submit(Request{Examples: stubExamples(1, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitFinished(t, m, st.ID); final.Results[0].SQL != "SELECT 7" {
		t.Errorf("default translator bypassed: %+v", final.Results)
	}
}

type offsetTranslator struct{ offset int }

func (o *offsetTranslator) Name() string { return "offset" }
func (o *offsetTranslator) Translate(e *spider.Example) core.Translation {
	return core.Translation{SQL: fmt.Sprintf("SELECT %d", o.offset+e.ID)}
}

// TestOnEvictHook pins the GC side-channel: hooks observe exactly the IDs
// the TTL GC deletes, outside the manager lock.
func TestOnEvictHook(t *testing.T) {
	m := NewManager(&stubTranslator{}, Config{Runners: 1, Queue: 8, TTL: time.Hour})
	defer shutdownOrFail(t, m)

	var mu sync.Mutex
	var evicted []string
	m.OnEvict(func(ids []string) {
		mu.Lock()
		evicted = append(evicted, ids...)
		mu.Unlock()
	})
	// Hooks may themselves call back into the manager without deadlocking.
	m.OnEvict(func(ids []string) { m.Stats() })

	st, err := m.Submit(Request{Examples: stubExamples(2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, m, st.ID)

	if n := m.GC(time.Now()); n != 0 {
		t.Fatalf("premature GC removed %d", n)
	}
	mu.Lock()
	if len(evicted) != 0 {
		t.Fatalf("hook fired before eviction: %v", evicted)
	}
	mu.Unlock()

	if n := m.GC(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("GC removed %d jobs, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 1 || evicted[0] != st.ID {
		t.Fatalf("hook saw %v, want [%s]", evicted, st.ID)
	}
}
