// Package jobs is the asynchronous batch-translation subsystem: it wraps
// core.Engine behind a Manager that owns a bounded FIFO admission queue, a
// fixed pool of runner goroutines, per-job lifecycle state with live
// progress counters, cooperative cancellation, TTL-based garbage collection
// of finished jobs, and graceful drain on shutdown. It is the piece that
// lets a fleet of clients share one pipeline: callers submit a batch, get a
// job ID back immediately, and poll (or cancel) instead of holding a
// connection open for the whole run.
//
// Admission control is strict: when the queue is full, Submit fails fast
// with ErrQueueFull rather than blocking the caller — upstream layers map
// that to HTTP 429 so load sheds at the edge instead of piling up.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/spider"
	"repro/internal/trace"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Transitions: Queued → Running → Done/Failed, and
// Queued/Running → Cancelled. Finished states (Done, Failed, Cancelled) are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Typed errors surfaced to admission and lookup callers.
var (
	// ErrQueueFull is returned by Submit when the admission queue is
	// saturated; the service layer maps it to HTTP 429.
	ErrQueueFull = errors.New("jobs: admission queue full")
	// ErrShuttingDown is returned by Submit after Shutdown has begun.
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	// ErrNotFound is returned for an unknown (or garbage-collected) job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrEmpty is returned by Submit for a request with no examples.
	ErrEmpty = errors.New("jobs: empty request")
)

// Config parameterizes a Manager. The zero value is usable: every field
// falls back to the default noted on it.
type Config struct {
	// Runners is the number of goroutines executing jobs (default 2). Each
	// runner executes one job at a time, so Runners bounds concurrent jobs.
	Runners int
	// Queue is the admission queue capacity (default 16). A Submit beyond
	// Queue pending jobs fails with ErrQueueFull.
	Queue int
	// Workers is the per-job engine pool size (default 4) unless the
	// request overrides it.
	Workers int
	// TTL is how long finished jobs remain queryable before the janitor
	// deletes them (default 15m). TTL < 0 disables garbage collection.
	TTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	return c
}

// Request is one batch submission.
type Request struct {
	// Examples are the tasks to translate, in result order.
	Examples []*spider.Example
	// Workers overrides the manager's per-job engine pool size when > 0.
	Workers int
	// Label is an optional client-supplied tag echoed in Status.
	Label string
	// TaskIDs is optional caller bookkeeping (e.g. benchmark task indices),
	// echoed in Status; when set its length must match Examples.
	TaskIDs []int
	// Translator, when non-nil, overrides the manager's translator for this
	// job — the multi-tenant catalog submits jobs against per-tenant
	// pipelines through one shared manager.
	Translator core.Translator
	// Run, when non-nil, replaces batch translation as the job body: the
	// runner invokes it with the job's context and the job finishes done,
	// cancelled (when the error is context.Canceled) or failed on its
	// return. Examples may be empty for Run jobs. This is how non-translation
	// work — e.g. the catalog's model builds — rides the manager's admission
	// queue, runner pool, TTL GC and drain.
	Run func(ctx context.Context) error
	// Trace optionally links the job to the submitting request's trace: the
	// runner records a queue-wait span (submission → first run) and a run
	// span, both parented under the submitter's span, even though they
	// finish long after the HTTP response went out. The zero Link is inert.
	Trace trace.Link
}

// Status is a point-in-time snapshot of a job, safe to retain.
type Status struct {
	ID    string
	State State
	Label string
	// TaskIDs echoes Request.TaskIDs (nil when the caller didn't set it).
	TaskIDs []int
	// Total is the number of examples in the job; Completed how many have
	// finished so far (== Total when State is done).
	Total     int
	Completed int
	// Stats aggregates accounting over the completed portion.
	Stats core.BatchStats
	// Results holds per-example translations. Slots not yet translated are
	// zero Translations; consult Done to know which are real. Populated
	// only once the job is finished.
	Results []core.Translation
	// Done flags which result slots completed (aligned with Results).
	Done []bool
	// Examples echoes the job's input tasks (aligned with Results) so
	// result renderers need no side table; populated once the job is
	// finished, like Results.
	Examples []*spider.Example
	// Err is the failure reason for StateFailed (empty otherwise).
	Err string
	// Workers is the engine pool size the job runs with.
	Workers int
	// Created, Started and Finished are lifecycle timestamps; Started and
	// Finished are zero until the corresponding transition.
	Created, Started, Finished time.Time
}

// job is the internal mutable record behind a Status.
type job struct {
	id      string
	seq     int
	label   string
	taskIDs []int
	ex      []*spider.Example
	workers int
	tr      core.Translator // per-job override; nil = manager default
	runFn   func(ctx context.Context) error
	link    trace.Link

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	completed int
	stats     core.BatchStats
	results   []core.Translation
	done      []bool
	err       string
	created   time.Time
	started   time.Time
	finished  time.Time
}

func (j *job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		State:     j.state,
		Label:     j.label,
		TaskIDs:   j.taskIDs,
		Total:     len(j.ex),
		Completed: j.completed,
		Stats:     j.stats,
		Err:       j.err,
		Workers:   j.workers,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.state.Finished() {
		st.Results = j.results
		st.Done = j.done
		st.Examples = j.ex
	}
	return st
}

// Counters aggregates manager-wide accounting for observability endpoints.
type Counters struct {
	// QueueDepth is the number of jobs admitted but not yet running;
	// QueueCap the admission limit; Running how many are executing now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Running    int `json:"running"`
	// QueuePeak is the deepest the admission queue has ever been — the
	// high-water mark saturation tests read to prove back-pressure built
	// up even after the queue drained again.
	QueuePeak int `json:"queue_peak"`
	// Lifetime totals since the manager started.
	Submitted int `json:"submitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Manager owns the queue, the runner pool and the job table.
type Manager struct {
	tr  core.Translator
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // signals pending-queue activity to runners
	pending  []*job     // FIFO admission queue (bounded by cfg.Queue)
	jobs     map[string]*job
	seq      int
	closed   bool
	running  int
	counters Counters

	wg      sync.WaitGroup // runner goroutines
	stopGC  chan struct{}
	gcDone  chan struct{}
	closeGC sync.Once

	hookMu     sync.Mutex
	evictHooks []func(ids []string)
}

// OnEvict registers a hook called with the IDs of jobs the TTL garbage
// collector deletes. Hooks run outside the manager lock, after the jobs are
// gone from the table; callers use them to drop per-job side state (the
// service's memoized result renderings being the motivating case — without
// the hook those outlive the jobs they belong to).
func (m *Manager) OnEvict(fn func(ids []string)) {
	m.hookMu.Lock()
	m.evictHooks = append(m.evictHooks, fn)
	m.hookMu.Unlock()
}

// NewManager builds a manager around any Translator and starts its runners
// (and, when cfg.TTL >= 0, the garbage-collection janitor). Call Shutdown to
// stop it.
func NewManager(tr core.Translator, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		tr:     tr,
		cfg:    cfg,
		jobs:   map[string]*job{},
		stopGC: make(chan struct{}),
		gcDone: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	go m.janitor()
	return m
}

// Config reports the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit admits a job, returning its initial snapshot. It never blocks: a
// full queue fails with ErrQueueFull, a draining manager with
// ErrShuttingDown.
func (m *Manager) Submit(req Request) (Status, error) {
	if len(req.Examples) == 0 && req.Run == nil {
		return Status{}, ErrEmpty
	}
	if req.TaskIDs != nil && len(req.TaskIDs) != len(req.Examples) {
		return Status{}, fmt.Errorf("jobs: %d task ids for %d examples", len(req.TaskIDs), len(req.Examples))
	}
	workers := req.Workers
	if workers <= 0 {
		workers = m.cfg.Workers
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.counters.Rejected++
		return Status{}, ErrShuttingDown
	}
	if len(m.pending) >= m.cfg.Queue {
		m.counters.Rejected++
		return Status{}, ErrQueueFull
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.seq++
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.seq),
		seq:     m.seq,
		label:   req.Label,
		taskIDs: req.TaskIDs,
		ex:      req.Examples,
		workers: workers,
		tr:      req.Translator,
		runFn:   req.Run,
		link:    req.Trace,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.counters.Submitted++
	if len(m.pending) > m.counters.QueuePeak {
		m.counters.QueuePeak = len(m.pending)
	}
	m.cond.Signal()
	return j.snapshot(), nil
}

// Get returns a snapshot of the job, or ErrNotFound.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List snapshots every known job in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].seq < js[b].seq })
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Cancel requests cooperative cancellation. A queued job is finalized
// immediately and its admission slot freed; a running job's context is
// cancelled, its workers stop picking up further examples, and the runner
// checkpoints whatever completed. A cancel that arrives after every example
// has already been translated is a no-op: the job finishes as done with
// full results. The returned snapshot reflects the state after the request.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	m.cancelJob(j)
	return j.snapshot(), nil
}

func (m *Manager) cancelJob(j *job) {
	j.cancel()
	m.mu.Lock()
	for i, q := range m.pending {
		if q == j { // still queued: free the admission slot
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	j.mu.Lock()
	wasQueued := j.state == StateQueued
	if wasQueued {
		j.state = StateCancelled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	if wasQueued {
		m.mu.Lock()
		m.counters.Cancelled++
		m.mu.Unlock()
	}
}

// Stats reports manager-wide counters.
func (m *Manager) Stats() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters
	c.QueueDepth = len(m.pending)
	c.QueueCap = m.cfg.Queue
	c.Running = m.running
	return c
}

// runner executes pending jobs until shutdown empties the queue.
func (m *Manager) runner() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.run(j)
		m.mu.Lock()
	}
}

func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.done = make([]bool, len(j.ex))
	created, started := j.created, j.started
	j.mu.Unlock()

	m.mu.Lock()
	m.running++
	m.mu.Unlock()

	// Linked jobs record their lifecycle into the submitter's trace: the
	// queue-wait span covers admission → first run, the run span the actual
	// execution. Both land after the HTTP root finished; a slow or failed
	// run still promotes the trace into the retained ring.
	runCtx := j.ctx
	var runSpan *trace.Span
	if j.link.Active() {
		qs := j.link.Span("jobs.queue_wait", created)
		qs.SetAttrs(trace.Str("job_id", j.id))
		qs.FinishAt(started)
		runSpan = j.link.Span("jobs.run", started)
		runSpan.SetAttrs(trace.Str("job_id", j.id), trace.Int("examples", int64(len(j.ex))))
		runCtx = trace.ContextWithSpan(runCtx, runSpan)
	}

	var (
		results []core.Translation
		stats   core.BatchStats
		err     error
	)
	// Label the runner for CPU profiles while this job executes.
	pprof.Do(runCtx, pprof.Labels("job", j.id), func(ctx context.Context) {
		if j.runFn != nil {
			err = j.runFn(ctx)
		} else {
			tr := m.tr
			if j.tr != nil {
				tr = j.tr
			}
			eng := core.NewEngine(tr, j.workers)
			results, stats, err = eng.TranslateBatchProgress(ctx, j.ex,
				func(i int, _ core.Translation, sofar core.BatchStats) {
					j.mu.Lock()
					j.completed = sofar.Completed
					j.stats = sofar
					j.done[i] = true
					j.mu.Unlock()
				})
		}
	})

	j.mu.Lock()
	j.results = results
	j.stats = stats
	j.completed = stats.Completed
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled):
		// Cooperative cancellation checkpoints whatever completed.
		j.state = StateCancelled
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	final := j.state
	finished := j.finished
	j.mu.Unlock()

	if runSpan != nil {
		runSpan.SetAttrs(trace.Str("state", string(final)), trace.Int("completed", int64(stats.Completed)))
		runSpan.SetError(final == StateFailed)
		runSpan.FinishAt(finished)
	}

	m.mu.Lock()
	m.running--
	switch final {
	case StateDone:
		m.counters.Completed++
	case StateCancelled:
		m.counters.Cancelled++
	default:
		m.counters.Failed++
	}
	m.mu.Unlock()
}

// janitor periodically deletes finished jobs older than the TTL.
func (m *Manager) janitor() {
	defer close(m.gcDone)
	if m.cfg.TTL < 0 {
		<-m.stopGC
		return
	}
	period := m.cfg.TTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.stopGC:
			return
		case now := <-t.C:
			m.GC(now)
		}
	}
}

// GC deletes finished jobs whose Finished time is older than now-TTL and
// returns how many it removed. The janitor calls it on a timer; tests may
// call it directly with a synthetic clock.
func (m *Manager) GC(now time.Time) int {
	if m.cfg.TTL < 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.TTL)
	m.mu.Lock()
	var evicted []string
	for id, j := range m.jobs {
		j.mu.Lock()
		dead := j.state.Finished() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if dead {
			delete(m.jobs, id)
			evicted = append(evicted, id)
		}
	}
	m.mu.Unlock()
	if len(evicted) > 0 {
		m.hookMu.Lock()
		hooks := append([]func(ids []string){}, m.evictHooks...)
		m.hookMu.Unlock()
		for _, fn := range hooks {
			fn(evicted)
		}
	}
	return len(evicted)
}

// Shutdown drains the manager: admission stops immediately (Submit fails
// with ErrShuttingDown), still-queued jobs are cancelled without running,
// and running jobs are given until ctx expires to finish — after which
// their contexts are cancelled and they checkpoint partial results. Either
// way every runner has exited and all completed results remain queryable
// when Shutdown returns. The error is ctx.Err() when the deadline forced
// cancellation, nil on a clean drain. Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.cond.Broadcast()
		m.closeGC.Do(func() { close(m.stopGC) })
	}
	queued := append([]*job(nil), m.pending...)
	m.mu.Unlock()
	for _, j := range queued {
		m.cancelJob(j)
	}

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		running := make([]*job, 0)
		for _, j := range m.jobs {
			j.mu.Lock()
			if j.state == StateRunning {
				running = append(running, j)
			}
			j.mu.Unlock()
		}
		m.mu.Unlock()
		for _, j := range running {
			j.cancel()
		}
		<-drained
	}
	<-m.gcDone
	return err
}
