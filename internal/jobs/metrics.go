package jobs

import "repro/internal/metrics"

// Instrument registers a scrape-time collector exposing the manager's queue
// and lifecycle counters as jobs_* series. Queue depth, capacity and the
// running count are gauges (they move both ways); the lifetime totals are
// counters. The manager's hot path is untouched — Stats() runs only at
// scrape time. Register each manager once per registry.
func (m *Manager) Instrument(reg *metrics.Registry) {
	reg.Collect(func(s *metrics.Sink) {
		c := m.Stats()
		s.Gauge("jobs_queue_depth", "Jobs admitted but not yet running.", float64(c.QueueDepth))
		s.Gauge("jobs_queue_capacity", "Admission queue capacity (full queue rejects with 429).", float64(c.QueueCap))
		s.Gauge("jobs_running", "Jobs executing right now.", float64(c.Running))
		s.Gauge("jobs_queue_peak", "Deepest the admission queue has ever been (high-water mark).", float64(c.QueuePeak))
		s.Counter("jobs_submitted_total", "Jobs admitted since start.", float64(c.Submitted))
		s.Counter("jobs_rejected_total", "Submissions refused (queue full or draining).", float64(c.Rejected))
		s.Counter("jobs_completed_total", "Jobs finished done.", float64(c.Completed))
		s.Counter("jobs_failed_total", "Jobs finished failed.", float64(c.Failed))
		s.Counter("jobs_cancelled_total", "Jobs finished cancelled.", float64(c.Cancelled))
	})
}
