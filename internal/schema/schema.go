// Package schema defines the database model shared by the corpus generator,
// the execution engine, the schema-pruning module and the prompt builder:
// tables, typed columns, primary/foreign keys and in-memory rows.
package schema

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// ColType is the column data type.
type ColType int

// Supported column types.
const (
	TypeText ColType = iota
	TypeNumber
)

func (t ColType) String() string {
	if t == TypeNumber {
		return "number"
	}
	return "text"
}

// Value is a single cell value. The zero Value is NULL.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
}

// ValueKind discriminates Value variants.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindStr
	KindNum
)

// S returns a string Value.
func S(s string) Value { return Value{Kind: KindStr, Str: s} }

// N returns a numeric Value.
func N(n float64) Value { return Value{Kind: KindNum, Num: n} }

// Null returns the NULL Value.
func Null() Value { return Value{} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for display and for result comparison.
func (v Value) String() string {
	switch v.Kind {
	case KindStr:
		return v.Str
	case KindNum:
		return strconv.FormatFloat(v.Num, 'g', 12, 64)
	default:
		return "NULL"
	}
}

// Compare orders two values: NULL < numbers < strings, numbers numerically,
// strings lexicographically (case-insensitive, matching SQLite's NOCASE-ish
// behaviour the corpus relies on).
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		return int(v.Kind) - int(o.Kind)
	}
	switch v.Kind {
	case KindNum:
		switch {
		case v.Num < o.Num:
			return -1
		case v.Num > o.Num:
			return 1
		}
		return 0
	case KindStr:
		a, b := strings.ToLower(v.Str), strings.ToLower(o.Str)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
	// NLName is the natural-language rendering of the column used by the NL
	// realizer ("birth date" for birth_date).
	NLName string
}

// Table is a named relation with columns and rows.
type Table struct {
	Name       string
	NLName     string // natural-language table name
	Columns    []Column
	PrimaryKey string // primary key column name ("" when none)
	Rows       [][]Value
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.ColIndex(name) >= 0 }

// ForeignKey links FromTable.FromColumn to ToTable.ToColumn (a primary key).
type ForeignKey struct {
	FromTable  string
	FromColumn string
	ToTable    string
	ToColumn   string
}

// Database is a named schema plus data.
type Database struct {
	Name        string
	Tables      []*Table
	ForeignKeys []ForeignKey

	// fp caches Fingerprint (0 = not yet computed). Schemas are immutable
	// once handed to the execution engine, so the first computed value
	// stays valid; Clone and Prune build fresh Databases with a clear
	// cache.
	fp atomic.Uint64
}

// Fingerprint hashes the database's structural identity: table order,
// column names and types. The database name is deliberately excluded —
// plans reference tables and columns by name within the schema, never the
// database name, so two databases that differ only in name are
// plan-compatible and share compiled plans (tenant clones registered from
// one template schema are the motivating case). Row data is excluded too.
// The execution engine keys prepared-statement reuse on it, so two
// databases with equal fingerprints must be plan-compatible. The value is
// computed once and cached; do not mutate the schema after the engine has
// seen it.
func (d *Database) Fingerprint() uint64 {
	if v := d.fp.Load(); v != 0 {
		return v
	}
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	for _, t := range d.Tables {
		write(t.Name)
		for _, c := range t.Columns {
			write(c.Name)
			h.Write([]byte{byte(c.Type)})
		}
		h.Write([]byte{1})
	}
	v := h.Sum64()
	if v == 0 {
		v = 1 // reserve 0 as the "uncomputed" sentinel
	}
	d.fp.Store(v)
	return v
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	for _, t := range d.Tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

// TableNames returns all table names in declaration order.
func (d *Database) TableNames() []string {
	names := make([]string, len(d.Tables))
	for i, t := range d.Tables {
		names[i] = t.Name
	}
	return names
}

// TablesWithColumn returns the names of tables containing the column.
func (d *Database) TablesWithColumn(col string) []string {
	var out []string
	for _, t := range d.Tables {
		if t.HasColumn(col) {
			out = append(out, t.Name)
		}
	}
	return out
}

// Adjacency returns the undirected FK graph over table names: for each table,
// the set of tables it shares a foreign-primary key edge with.
func (d *Database) Adjacency() map[string]map[string]bool {
	adj := make(map[string]map[string]bool, len(d.Tables))
	for _, t := range d.Tables {
		adj[strings.ToLower(t.Name)] = map[string]bool{}
	}
	for _, fk := range d.ForeignKeys {
		a, b := strings.ToLower(fk.FromTable), strings.ToLower(fk.ToTable)
		if adj[a] == nil || adj[b] == nil {
			continue
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	return adj
}

// FKBetween returns a foreign key connecting tables a and b (either
// direction) and whether one exists.
func (d *Database) FKBetween(a, b string) (ForeignKey, bool) {
	for _, fk := range d.ForeignKeys {
		if strings.EqualFold(fk.FromTable, a) && strings.EqualFold(fk.ToTable, b) {
			return fk, true
		}
		if strings.EqualFold(fk.FromTable, b) && strings.EqualFold(fk.ToTable, a) {
			return fk, true
		}
	}
	return ForeignKey{}, false
}

// Clone deep-copies the database (rows are shared copy-on-nothing slices
// copied shallowly at the row level; callers never mutate cells in place).
func (d *Database) Clone() *Database {
	nd := &Database{Name: d.Name, ForeignKeys: append([]ForeignKey(nil), d.ForeignKeys...)}
	for _, t := range d.Tables {
		nt := &Table{
			Name:       t.Name,
			NLName:     t.NLName,
			Columns:    append([]Column(nil), t.Columns...),
			PrimaryKey: t.PrimaryKey,
			Rows:       make([][]Value, len(t.Rows)),
		}
		for i, r := range t.Rows {
			nt.Rows[i] = append([]Value(nil), r...)
		}
		nd.Tables = append(nd.Tables, nt)
	}
	return nd
}

// Prune returns a copy of the database containing only the kept tables and,
// within them, only the kept columns (plus primary keys, which are always
// retained so join semantics survive). keepCols maps lower-cased table name
// to the set of lower-cased column names to keep; a nil set keeps all.
func (d *Database) Prune(keepTables []string, keepCols map[string]map[string]bool) *Database {
	keepT := make(map[string]bool, len(keepTables))
	for _, t := range keepTables {
		keepT[strings.ToLower(t)] = true
	}
	nd := &Database{Name: d.Name}
	for _, t := range d.Tables {
		if !keepT[strings.ToLower(t.Name)] {
			continue
		}
		cols := keepCols[strings.ToLower(t.Name)]
		nt := &Table{Name: t.Name, NLName: t.NLName, PrimaryKey: t.PrimaryKey}
		var keptIdx []int
		for i, c := range t.Columns {
			keep := cols == nil || cols[strings.ToLower(c.Name)] ||
				strings.EqualFold(c.Name, t.PrimaryKey)
			if !keep {
				// FK columns referenced by kept foreign keys must survive too.
				for _, fk := range d.ForeignKeys {
					if strings.EqualFold(fk.FromTable, t.Name) && strings.EqualFold(fk.FromColumn, c.Name) && keepT[strings.ToLower(fk.ToTable)] {
						keep = true
						break
					}
				}
			}
			if keep {
				nt.Columns = append(nt.Columns, c)
				keptIdx = append(keptIdx, i)
			}
		}
		for _, r := range t.Rows {
			nr := make([]Value, len(keptIdx))
			for j, i := range keptIdx {
				nr[j] = r[i]
			}
			nt.Rows = append(nt.Rows, nr)
		}
		nd.Tables = append(nd.Tables, nt)
	}
	for _, fk := range d.ForeignKeys {
		if keepT[strings.ToLower(fk.FromTable)] && keepT[strings.ToLower(fk.ToTable)] {
			nd.ForeignKeys = append(nd.ForeignKeys, fk)
		}
	}
	return nd
}

// RepresentativeValues returns up to max distinct values of the column for
// prompt rendering, most frequent first (the BRIDGE-style value subset the
// paper cites [19]).
func (d *Database) RepresentativeValues(table, column string, max int) []Value {
	t := d.Table(table)
	if t == nil {
		return nil
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return nil
	}
	freq := map[string]int{}
	rep := map[string]Value{}
	for _, r := range t.Rows {
		v := r[ci]
		if v.IsNull() {
			continue
		}
		k := v.String()
		freq[k]++
		rep[k] = v
	}
	keys := make([]string, 0, len(freq))
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if freq[keys[i]] != freq[keys[j]] {
			return freq[keys[i]] > freq[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > max {
		keys = keys[:max]
	}
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = rep[k]
	}
	return out
}

// DDL renders a compact schema description used in prompts:
//
//	table(col1, col2, ...); PK=..., FK a.x->b.y
func (d *Database) DDL() string {
	var sb strings.Builder
	for _, t := range d.Tables {
		sb.WriteString(t.Name)
		sb.WriteByte('(')
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
		}
		sb.WriteString(")\n")
	}
	for _, fk := range d.ForeignKeys {
		fmt.Fprintf(&sb, "FK %s.%s -> %s.%s\n", fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
	}
	return sb.String()
}
