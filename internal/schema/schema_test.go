package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleDB() *Database {
	return &Database{
		Name: "d",
		Tables: []*Table{
			{
				Name: "a", PrimaryKey: "id",
				Columns: []Column{{Name: "id", Type: TypeNumber}, {Name: "x", Type: TypeText}, {Name: "y", Type: TypeNumber}},
				Rows: [][]Value{
					{N(1), S("p"), N(10)},
					{N(2), S("q"), N(20)},
					{N(3), S("p"), N(30)},
				},
			},
			{
				Name: "b", PrimaryKey: "id",
				Columns: []Column{{Name: "id", Type: TypeNumber}, {Name: "a_id", Type: TypeNumber}, {Name: "z", Type: TypeText}},
				Rows: [][]Value{
					{N(1), N(1), S("m")},
					{N(2), N(2), S("n")},
				},
			},
			{
				Name: "c", PrimaryKey: "id",
				Columns: []Column{{Name: "id", Type: TypeNumber}, {Name: "b_id", Type: TypeNumber}},
				Rows:    [][]Value{{N(1), N(1)}},
			},
		},
		ForeignKeys: []ForeignKey{
			{FromTable: "b", FromColumn: "a_id", ToTable: "a", ToColumn: "id"},
			{FromTable: "c", FromColumn: "b_id", ToTable: "b", ToColumn: "id"},
		},
	}
}

func TestValueCompare(t *testing.T) {
	if N(1).Compare(N(2)) >= 0 || N(2).Compare(N(1)) <= 0 || !N(3).Equal(N(3)) {
		t.Error("numeric compare broken")
	}
	if S("Apple").Compare(S("apple")) != 0 {
		t.Error("string compare should be case-insensitive")
	}
	if !Null().IsNull() || Null().Equal(N(0)) {
		t.Error("null semantics broken")
	}
}

func TestTableLookup(t *testing.T) {
	db := sampleDB()
	if db.Table("A") == nil || db.Table("nope") != nil {
		t.Error("case-insensitive table lookup broken")
	}
	tb := db.Table("a")
	if tb.ColIndex("X") != 1 || tb.ColIndex("gone") != -1 {
		t.Error("column lookup broken")
	}
}

func TestAdjacency(t *testing.T) {
	db := sampleDB()
	adj := db.Adjacency()
	if !adj["a"]["b"] || !adj["b"]["a"] || !adj["b"]["c"] {
		t.Errorf("adjacency wrong: %v", adj)
	}
	if adj["a"]["c"] {
		t.Error("a-c should not be adjacent")
	}
}

func TestFKBetween(t *testing.T) {
	db := sampleDB()
	if _, ok := db.FKBetween("a", "b"); !ok {
		t.Error("fk a-b missing")
	}
	if _, ok := db.FKBetween("b", "a"); !ok {
		t.Error("fk direction should not matter")
	}
	if _, ok := db.FKBetween("a", "c"); ok {
		t.Error("no fk between a and c")
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := sampleDB()
	cp := db.Clone()
	cp.Tables[0].Rows[0][1] = S("mutated")
	if db.Tables[0].Rows[0][1].Str == "mutated" {
		t.Error("clone shares row storage")
	}
}

func TestPruneKeepsPKAndFK(t *testing.T) {
	db := sampleDB()
	pruned := db.Prune([]string{"a", "b"}, map[string]map[string]bool{
		"a": {"x": true},
		"b": {"z": true},
	})
	if pruned.Table("c") != nil {
		t.Error("pruned table c survived")
	}
	a := pruned.Table("a")
	if !a.HasColumn("id") {
		t.Error("primary key pruned away")
	}
	b := pruned.Table("b")
	if !b.HasColumn("a_id") {
		t.Error("foreign key column linking kept tables pruned away")
	}
	if len(pruned.ForeignKeys) != 1 {
		t.Errorf("fk list wrong: %v", pruned.ForeignKeys)
	}
	// Rows narrowed to kept columns.
	if len(a.Rows[0]) != len(a.Columns) {
		t.Error("row width mismatch after pruning")
	}
}

func TestRepresentativeValuesFrequencyOrder(t *testing.T) {
	db := sampleDB()
	vals := db.RepresentativeValues("a", "x", 5)
	if len(vals) != 2 || vals[0].Str != "p" {
		t.Errorf("want most frequent first, got %v", vals)
	}
	if got := db.RepresentativeValues("a", "x", 1); len(got) != 1 {
		t.Errorf("max not applied: %v", got)
	}
}

func TestDDLContainsEverything(t *testing.T) {
	ddl := sampleDB().DDL()
	for _, want := range []string{"a(id, x, y)", "FK b.a_id -> a.id"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

// Property: Compare is antisymmetric and Equal is reflexive over values.
func TestQuickValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := N(a), N(b)
		return va.Compare(vb) == -vb.Compare(va) && va.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := S(a), S(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestFingerprintIsContentAddressed(t *testing.T) {
	a, b := sampleDB(), sampleDB()
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("databases differing only in name must share a fingerprint (they are plan-compatible)")
	}

	// Structural changes must change it: column type, column name, table
	// order, extra column.
	typ := sampleDB()
	typ.Tables[0].Columns[1].Type = TypeNumber
	if typ.Fingerprint() == a.Fingerprint() {
		t.Error("column type change did not change fingerprint")
	}
	col := sampleDB()
	col.Tables[0].Columns[1].Name = "renamed"
	if col.Fingerprint() == a.Fingerprint() {
		t.Error("column rename did not change fingerprint")
	}
	order := sampleDB()
	order.Tables[0], order.Tables[1] = order.Tables[1], order.Tables[0]
	if order.Fingerprint() == a.Fingerprint() {
		t.Error("table reorder did not change fingerprint")
	}
	extra := sampleDB()
	extra.Tables[2].Columns = append(extra.Tables[2].Columns, Column{Name: "w", Type: TypeText})
	if extra.Fingerprint() == a.Fingerprint() {
		t.Error("extra column did not change fingerprint")
	}

	// Row data is excluded.
	rows := sampleDB()
	rows.Tables[0].Rows = nil
	if rows.Fingerprint() != a.Fingerprint() {
		t.Error("row data must not affect the fingerprint")
	}
}

func TestFingerprintCached(t *testing.T) {
	d := sampleDB()
	fp := d.Fingerprint()
	if fp == 0 {
		t.Fatal("fingerprint must never be 0")
	}
	if d.Fingerprint() != fp {
		t.Error("cached fingerprint changed")
	}
}
