// Package exp is the experiment harness: it builds the corpus, trains the
// substrate models once, evaluates translators with the EM/EX/TS metrics,
// and regenerates every table and figure of the paper's evaluation section
// (see DESIGN.md's per-experiment index).
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/predictor"
	"repro/internal/spider"
	"repro/internal/sqlir"
)

// Env is the shared experiment environment: corpus, trained models and
// distilled test suites, built once and reused across experiments.
type Env struct {
	Corpus *spider.Corpus
	Clf    *classifier.Model
	Pred   *predictor.Model
	suites map[string]*eval.Suite
	seed   int64
}

// NewEnv builds an environment at the given corpus scale (1.0 = the paper's
// full Table 3 sizes; smaller scales are proportionally reduced for fast
// iteration).
func NewEnv(seed int64, scale float64) *Env {
	var c *spider.Corpus
	if scale >= 1 {
		c = spider.Generate(seed)
	} else {
		c = spider.GenerateSmall(seed, scale)
	}
	env := &Env{
		Corpus: c,
		Clf:    classifier.Train(c.Train.Examples),
		Pred:   predictor.Train(c.Train.Examples),
		suites: map[string]*eval.Suite{},
		seed:   seed,
	}
	return env
}

// Suite lazily builds (and caches) the distilled test suite for a database,
// using that database's gold queries in the benchmark as probes.
func (env *Env) Suite(b *spider.Benchmark, dbName string) *eval.Suite {
	key := b.Name + "/" + dbName
	if s, ok := env.suites[key]; ok {
		return s
	}
	var probes []*sqlir.Select
	var db = (*spider.Example)(nil)
	for _, e := range b.Examples {
		if e.DB.Name == dbName {
			if db == nil {
				db = e
			}
			if len(probes) < 24 {
				probes = append(probes, e.Gold)
			}
		}
	}
	if db == nil {
		return &eval.Suite{}
	}
	cfg := eval.DefaultSuiteConfig()
	cfg.Seed = env.seed + int64(len(env.suites))
	s := eval.BuildSuite(db.DB, probes, cfg)
	env.suites[key] = s
	return s
}

// Scores aggregates metric results for one run.
type Scores struct {
	Strategy   string
	N          int
	EM, EX, TS float64
	// ByHardness maps bucket -> (EM, EX) percentages.
	ByHardness map[string][2]float64
	// Token accounting per query (thousands).
	InTokensPerQ, OutTokensPerQ float64
}

// String renders the headline numbers.
func (s Scores) String() string {
	return fmt.Sprintf("%-28s EM=%5.1f%% EX=%5.1f%% TS=%5.1f%% tok/q=%.2fk",
		s.Strategy, s.EM, s.EX, s.TS, s.InTokensPerQ+s.OutTokensPerQ)
}

// RunOptions tunes an evaluation run.
type RunOptions struct {
	// Limit caps the number of examples evaluated (0 = all).
	Limit int
	// WithTS enables the (costlier) test-suite metric.
	WithTS bool
	// Workers parallelizes translation across a core.Engine pool when > 1.
	// The pipeline is deterministic per example, so the scores are identical
	// to the sequential path regardless of the worker count.
	Workers int
}

// Run evaluates a translator over a benchmark split. Translation runs first
// (sequentially, or across opts.Workers pool goroutines); the metric pass is
// always sequential and in input order, so parallel and sequential runs
// produce byte-identical output.
func (env *Env) Run(tr core.Translator, b *spider.Benchmark, opts RunOptions) Scores {
	examples := b.Examples
	if opts.Limit > 0 && opts.Limit < len(examples) {
		examples = examples[:opts.Limit]
	}
	var results []core.Translation
	if opts.Workers > 1 {
		results, _, _ = core.NewEngine(tr, opts.Workers).TranslateBatch(context.Background(), examples)
	} else {
		results = make([]core.Translation, len(examples))
		for i, e := range examples {
			results[i] = tr.Translate(e)
		}
	}
	s := Scores{Strategy: tr.Name(), N: len(examples), ByHardness: map[string][2]float64{}}
	hardCount := map[string]int{}
	hardEM := map[string]int{}
	hardEX := map[string]int{}
	var em, ex, ts int
	var inTok, outTok int
	for i, e := range examples {
		res := results[i]
		inTok += res.InputTokens
		outTok += res.OutputTokens
		okEM := eval.ExactSetMatchSQL(res.SQL, e.GoldSQL)
		okEX := eval.ExecutionMatch(e.DB, res.SQL, e.GoldSQL)
		if okEM {
			em++
			hardEM[e.Hardness]++
		}
		if okEX {
			ex++
			hardEX[e.Hardness]++
		}
		hardCount[e.Hardness]++
		if opts.WithTS {
			suite := env.Suite(b, e.DB.Name)
			if eval.TestSuiteMatch(e.DB, suite, res.SQL, e.GoldSQL) {
				ts++
			}
		}
	}
	n := float64(len(examples))
	if n == 0 {
		return s
	}
	s.EM = 100 * float64(em) / n
	s.EX = 100 * float64(ex) / n
	if opts.WithTS {
		s.TS = 100 * float64(ts) / n
	}
	for h, c := range hardCount {
		s.ByHardness[h] = [2]float64{
			100 * float64(hardEM[h]) / float64(c),
			100 * float64(hardEX[h]) / float64(c),
		}
	}
	s.InTokensPerQ = float64(inTok) / n / 1000
	s.OutTokensPerQ = float64(outTok) / n / 1000
	return s
}

// ---- strategy constructors ----

// Purple builds the default PURPLE pipeline on a tier.
func (env *Env) Purple(tier llm.Tier) *core.Pipeline {
	return env.PurpleWith(tier, core.DefaultConfig())
}

// PurpleWith builds PURPLE with a custom config, reusing the environment's
// trained substrate models.
func (env *Env) PurpleWith(tier llm.Tier, cfg core.Config) *core.Pipeline {
	return env.PurpleWithClient(llm.NewSim(tier), cfg)
}

// PurpleWithClient builds PURPLE around an arbitrary LLM client — e.g. a
// llm.Cache-wrapped Sim — reusing the environment's trained substrate models.
func (env *Env) PurpleWithClient(client llm.Client, cfg core.Config) *core.Pipeline {
	return core.NewWithModels(env.Corpus.Train.Examples, client, cfg, env.Clf, env.Pred)
}

// ChatGPTSQL builds the zero-shot baseline.
func (env *Env) ChatGPTSQL(tier llm.Tier) core.Translator {
	return &baselines.ChatGPTSQL{Client: llm.NewSim(tier), Seed: env.seed}
}

// C3 builds the calibration baseline.
func (env *Env) C3(tier llm.Tier) core.Translator {
	return &baselines.C3{Client: llm.NewSim(tier), Clf: env.Clf, Consistency: 20, Seed: env.seed}
}

// DINSQL builds the chain-of-thought baseline.
func (env *Env) DINSQL(tier llm.Tier) core.Translator {
	return baselines.NewDINSQL(llm.NewSim(tier), env.Corpus.Train.Examples, 8, env.seed)
}

// DAILSQL builds the similarity-selection baseline.
func (env *Env) DAILSQL(tier llm.Tier) core.Translator {
	return baselines.NewDAILSQL(llm.NewSim(tier), env.Pred, env.Corpus.Train.Examples, 3072, env.seed)
}

// PLM builds one PLM-family reference row.
func (env *Env) PLM(label string) core.Translator {
	return baselines.NewPLMDirect(label, env.seed)
}

// FormatTable renders rows of scores as an aligned text table.
func FormatTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c + strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

// pct formats a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
