package exp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/llm"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(3, 0.05)
}

func TestRunProducesScores(t *testing.T) {
	env := testEnv(t)
	s := env.Run(env.ChatGPTSQL(llm.ChatGPT), env.Corpus.Dev, RunOptions{Limit: 25})
	if s.N != 25 {
		t.Errorf("N = %d", s.N)
	}
	if s.EM < 0 || s.EM > 100 || s.EX < s.EM-100 {
		t.Errorf("scores out of range: %+v", s)
	}
	if s.InTokensPerQ <= 0 {
		t.Error("token accounting missing")
	}
	if len(s.ByHardness) == 0 {
		t.Error("hardness breakdown missing")
	}
}

func TestRunWithTS(t *testing.T) {
	env := testEnv(t)
	s := env.Run(env.PLM("RESDSQL"), env.Corpus.Dev, RunOptions{Limit: 20, WithTS: true})
	if s.TS > s.EX {
		t.Errorf("TS (%.1f) cannot exceed EX (%.1f)", s.TS, s.EX)
	}
}

func TestSuiteCaching(t *testing.T) {
	env := testEnv(t)
	db := env.Corpus.Dev.Examples[0].DB.Name
	a := env.Suite(env.Corpus.Dev, db)
	b := env.Suite(env.Corpus.Dev, db)
	if a != b {
		t.Error("suite not cached")
	}
	if len(a.Instances) == 0 {
		t.Error("empty suite")
	}
}

func TestTable3Render(t *testing.T) {
	env := testEnv(t)
	out := env.Table3()
	for _, want := range []string{"SPIDER-TRAIN", "SPIDER-DEV", "SPIDER-DK", "SPIDER-SYN", "SPIDER-REALISTIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Render(t *testing.T) {
	env := testEnv(t)
	out := env.Table6(RunOptions{Limit: 20})
	for _, want := range []string{"-Schema Pruning", "-Steiner Tree", "-Demonstration Selection", "-Database Adaption", "+Oracle Skeleton"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 6 missing row %q:\n%s", want, out)
		}
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable("T", []string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("unexpected line count: %q", out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

// TestRunParallelMatchesSequential asserts the -workers evaluation mode
// reproduces the sequential scores exactly — table output must be
// byte-identical regardless of worker count.
func TestRunParallelMatchesSequential(t *testing.T) {
	env := NewEnv(3, 0.05)
	tr := env.Purple(llm.ChatGPT)
	seq := env.Run(tr, env.Corpus.Dev, RunOptions{Limit: 30})
	for _, w := range []int{2, 8} {
		par := env.Run(tr, env.Corpus.Dev, RunOptions{Limit: 30, Workers: w})
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d scores differ:\nseq: %+v\npar: %+v", w, seq, par)
		}
	}
}
