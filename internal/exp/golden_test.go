package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// Golden snapshots pin the reproduction's headline tables against
// accidental drift: any change to the pipeline, the corpus sampler, the
// simulated LLM, or the metrics that shifts Table 4 or Table 6 output shows
// up as a byte diff here. Regenerate deliberately with:
//
//	go test ./internal/exp -run TestGolden -update
//
// The environment (seed 3, scale 0.05, limit 20) matches the package's
// other tests so the snapshot stays cheap.
func goldenEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(3, 0.05)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create it): %v", path, err)
	}
	if got == string(want) {
		return
	}
	// Pinpoint the first diverging line for a readable failure.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s drifted at line %d:\n  golden: %q\n  got:    %q\n(rerun with -update only if the change is intentional)",
				name, i+1, w, g)
		}
	}
	t.Fatalf("%s drifted (lengths %d vs %d)", name, len(got), len(want))
}

func TestGoldenTable4(t *testing.T) {
	env := goldenEnv(t)
	checkGolden(t, "table4.golden", env.Table4(RunOptions{Limit: 20}))
}

func TestGoldenTable6(t *testing.T) {
	env := goldenEnv(t)
	checkGolden(t, "table6.golden", env.Table6(RunOptions{Limit: 20}))
}

// TestGoldenStability re-renders each pinned table a second time from a
// fresh environment and requires byte-identical output — the determinism
// property the snapshots rely on.
func TestGoldenStability(t *testing.T) {
	a, b := NewEnv(3, 0.05), NewEnv(3, 0.05)
	if x, y := a.Table6(RunOptions{Limit: 20}), b.Table6(RunOptions{Limit: 20}); x != y {
		t.Fatal("Table6 output not deterministic across environments")
	}
	if x, y := fmt.Sprint(a.Table4(RunOptions{Limit: 20})), fmt.Sprint(b.Table4(RunOptions{Limit: 20})); x != y {
		t.Fatal("Table4 output not deterministic across environments")
	}
}
