package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/selection"
	"repro/internal/spider"
)

// Table1 reproduces Table 1: EM/EX of prior LLM-based approaches on Spider
// dev (a preview of the Table 4 rows motivating the paper).
func (env *Env) Table1(opts RunOptions) string {
	dev := env.Corpus.Dev
	rows := [][]string{}
	for _, tr := range []core.Translator{
		env.ChatGPTSQL(llm.ChatGPT),
		env.C3(llm.ChatGPT),
		env.DINSQL(llm.GPT4),
		env.DAILSQL(llm.GPT4),
	} {
		s := env.Run(tr, dev, opts)
		rows = append(rows, []string{s.Strategy, pct(s.EM), pct(s.EX)})
	}
	return FormatTable("Table 1: LLMs-based approaches accuracy on Spider",
		[]string{"Strategy", "EM%", "EX%"}, rows)
}

// Table3 reproduces Table 3: the statistics of the five benchmark splits.
func (env *Env) Table3() string {
	rows := [][]string{}
	for _, b := range []*spider.Benchmark{
		env.Corpus.Train, env.Corpus.Dev, env.Corpus.DK, env.Corpus.Realistic, env.Corpus.Syn,
	} {
		st := b.Stat()
		rows = append(rows, []string{
			strings.ToUpper(b.Name),
			fmt.Sprintf("%d", st.Queries),
			fmt.Sprintf("%d", st.Databases),
			fmt.Sprintf("%.1f", st.AvgNLLen),
			fmt.Sprintf("%.1f", st.AvgSQLLen),
		})
	}
	return FormatTable("Table 3: The statistics of NL2SQL benchmarks",
		[]string{"Benchmark", "Queries", "Databases", "AvgNL", "AvgSQL"}, rows)
}

// Table4 reproduces Table 4: overall EM/EX/TS on Spider dev for PLM-based
// approaches, LLM-based approaches and PURPLE.
func (env *Env) Table4(opts RunOptions) string {
	opts.WithTS = true
	dev := env.Corpus.Dev
	rows := [][]string{}
	for _, tr := range []core.Translator{
		env.PLM("PICARD"),
		env.PLM("RESDSQL"),
		env.ChatGPTSQL(llm.ChatGPT),
		env.C3(llm.ChatGPT),
		env.DINSQL(llm.GPT4),
		env.DAILSQL(llm.GPT4),
		env.Purple(llm.ChatGPT),
		env.Purple(llm.GPT4),
	} {
		s := env.Run(tr, dev, opts)
		rows = append(rows, []string{s.Strategy, pct(s.EM), pct(s.EX), pct(s.TS)})
	}
	return FormatTable("Table 4: Translation accuracy on Spider",
		[]string{"Strategy", "EM%", "EX%", "TS%"}, rows)
}

// Figure9 reproduces Figure 9: EM/EX by SQL hardness level on Spider dev.
func (env *Env) Figure9(opts RunOptions) string {
	dev := env.Corpus.Dev
	buckets := []string{"easy", "medium", "hard", "extra"}
	header := []string{"Strategy"}
	for _, b := range buckets {
		header = append(header, b+"-EM", b+"-EX")
	}
	rows := [][]string{}
	for _, tr := range []core.Translator{
		env.Purple(llm.GPT4),
		env.Purple(llm.ChatGPT),
		env.DAILSQL(llm.GPT4),
		env.DINSQL(llm.GPT4),
		env.C3(llm.ChatGPT),
	} {
		s := env.Run(tr, dev, opts)
		row := []string{s.Strategy}
		for _, b := range buckets {
			h := s.ByHardness[b]
			row = append(row, pct(h[0]), pct(h[1]))
		}
		rows = append(rows, row)
	}
	return FormatTable("Figure 9: EM/EX by SQL hardness on Spider dev", header, rows)
}

// Figure10 reproduces Figure 10: generalization to Spider-DK, Spider-SYN
// and Spider-Realistic.
func (env *Env) Figure10(opts RunOptions) string {
	header := []string{"Strategy", "DK-EM", "DK-EX", "SYN-EM", "SYN-EX", "Real-EM", "Real-EX"}
	rows := [][]string{}
	for _, tr := range []core.Translator{
		env.ChatGPTSQL(llm.ChatGPT),
		env.C3(llm.ChatGPT),
		env.Purple(llm.ChatGPT),
	} {
		row := []string{tr.Name()}
		for _, b := range []*spider.Benchmark{env.Corpus.DK, env.Corpus.Syn, env.Corpus.Realistic} {
			s := env.Run(tr, b, opts)
			row = append(row, pct(s.EM), pct(s.EX))
		}
		rows = append(rows, row)
	}
	return FormatTable("Figure 10: EM/EX on Spider-DK / Spider-SYN / Spider-Realistic", header, rows)
}

// Figure11 reproduces Figure 11: the budget grid — EM, EX and token cost
// under input-length budgets (len) and consistency numbers (num).
func (env *Env) Figure11(opts RunOptions) string {
	lens := []int{512, 1024, 2048, 3072}
	nums := []int{1, 10, 20, 30, 40}
	var sb strings.Builder
	sb.WriteString("Figure 11: PURPLE (ChatGPT) under budget settings (EM% / EX% / tok-per-query-k)\n")
	sb.WriteString(fmt.Sprintf("%-8s", "len\\num"))
	for _, n := range nums {
		sb.WriteString(fmt.Sprintf("%-22d", n))
	}
	sb.WriteString("\n")
	for _, l := range lens {
		sb.WriteString(fmt.Sprintf("%-8d", l))
		for _, n := range nums {
			// The real ChatGPT caps a call at 4096 tokens; mirror the N/A cell.
			if l+n*30 > 4096 && l == 3072 && n == 40 {
				sb.WriteString(fmt.Sprintf("%-22s", "N/A"))
				continue
			}
			cfg := core.DefaultConfig()
			cfg.PromptTokens = l
			cfg.Consistency = n
			s := env.Run(env.PurpleWith(llm.ChatGPT, cfg), env.Corpus.Dev, opts)
			cell := fmt.Sprintf("%.1f/%.1f/%.2f", s.EM, s.EX, s.InTokensPerQ+s.OutTokensPerQ)
			sb.WriteString(fmt.Sprintf("%-22s", cell))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure12 reproduces Figure 12: robustness of demonstration selection to
// the generalization schedule (left) and to skeleton-prediction noise
// (right).
func (env *Env) Figure12(opts RunOptions) string {
	var sb strings.Builder
	sb.WriteString("Figure 12: Robustness of demonstration selection (PURPLE, ChatGPT)\n")
	sb.WriteString("Left: p0 x INCREASE-Generalization policy (EM% / EX%)\n")
	policies := []struct {
		name string
		mk   func(p0 int) selection.Policy
	}{
		{"Linear-1", func(p0 int) selection.Policy { return selection.Linear(p0, 1) }},
		{"Linear-3", func(p0 int) selection.Policy { return selection.Linear(p0, 3) }},
		{"Exp-2", func(p0 int) selection.Policy { return selection.Exp(p0, 2) }},
	}
	sb.WriteString(fmt.Sprintf("%-10s", "policy\\p0"))
	p0s := []int{1, 3, 6, 9}
	for _, p0 := range p0s {
		sb.WriteString(fmt.Sprintf("%-14d", p0))
	}
	sb.WriteString("\n")
	for _, pol := range policies {
		sb.WriteString(fmt.Sprintf("%-10s", pol.name))
		for _, p0 := range p0s {
			cfg := core.DefaultConfig()
			cfg.Policy = pol.mk(p0)
			s := env.Run(env.PurpleWith(llm.ChatGPT, cfg), env.Corpus.Dev, opts)
			sb.WriteString(fmt.Sprintf("%-14s", fmt.Sprintf("%.1f/%.1f", s.EM, s.EX)))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("Right: masking-number x Drop-probability (EM% / EX%)\n")
	sb.WriteString(fmt.Sprintf("%-10s", "drop\\mask"))
	masks := []int{0, 1, 2, 3}
	for _, m := range masks {
		sb.WriteString(fmt.Sprintf("%-14d", m))
	}
	sb.WriteString("\n")
	for _, drop := range []float64{0, 0.5, 1} {
		sb.WriteString(fmt.Sprintf("%-10s", fmt.Sprintf("Drop-%.1f", drop)))
		for _, m := range masks {
			cfg := core.DefaultConfig()
			cfg.MaskLevels = m
			cfg.DropProb = drop
			s := env.Run(env.PurpleWith(llm.ChatGPT, cfg), env.Corpus.Dev, opts)
			sb.WriteString(fmt.Sprintf("%-14s", fmt.Sprintf("%.1f/%.1f", s.EM, s.EX)))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table5 reproduces Table 5: EM/EX of each strategy under ChatGPT vs GPT4.
func (env *Env) Table5(opts RunOptions) string {
	dev := env.Corpus.Dev
	rows := [][]string{}
	add := func(name string, mk func(llm.Tier) core.Translator) {
		g := env.Run(mk(llm.GPT4), dev, opts)
		c := env.Run(mk(llm.ChatGPT), dev, opts)
		rows = append(rows, []string{name, "GPT4", pct(g.EM), pct(g.EX)})
		rows = append(rows, []string{name, "ChatGPT",
			fmt.Sprintf("%s(%+.1f)", pct(c.EM), c.EM-g.EM),
			fmt.Sprintf("%s(%+.1f)", pct(c.EX), c.EX-g.EX)})
	}
	add("DIN-SQL", func(t llm.Tier) core.Translator { return env.DINSQL(t) })
	add("C3", func(t llm.Tier) core.Translator { return env.C3(t) })
	add("DAIL-SQL", func(t llm.Tier) core.Translator { return env.DAILSQL(t) })
	add("PURPLE", func(t llm.Tier) core.Translator { return env.Purple(t) })
	return FormatTable("Table 5: EM/EX comparison between ChatGPT and GPT4",
		[]string{"Strategy", "LLM", "EM%", "EX%"}, rows)
}

// Table6 reproduces Table 6: the ablation study on PURPLE (ChatGPT).
func (env *Env) Table6(opts RunOptions) string {
	dev := env.Corpus.Dev
	base := env.Run(env.Purple(llm.ChatGPT), dev, opts)
	rows := [][]string{{"PURPLE (ChatGPT)", pct(base.EM), pct(base.EX)}}
	variant := func(label string, mutate func(*core.Config)) {
		cfg := core.DefaultConfig()
		mutate(&cfg)
		s := env.Run(env.PurpleWith(llm.ChatGPT, cfg), dev, opts)
		rows = append(rows, []string{label,
			fmt.Sprintf("%s(%+.1f)", pct(s.EM), s.EM-base.EM),
			fmt.Sprintf("%s(%+.1f)", pct(s.EX), s.EX-base.EX)})
	}
	variant("-Schema Pruning", func(c *core.Config) { c.UseSchemaPruning = false })
	variant("-Steiner Tree", func(c *core.Config) { c.UseSteinerTree = false })
	variant("-Demonstration Selection", func(c *core.Config) { c.UseSelection = false })
	variant("-Database Adaption", func(c *core.Config) { c.UseAdaption = false })
	variant("+Oracle Skeleton", func(c *core.Config) { c.OracleSkeleton = true })
	return FormatTable("Table 6: Ablation Study", []string{"Strategy", "EM%", "EX%"}, rows)
}
