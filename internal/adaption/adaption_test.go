package adaption

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlexec"
)

// fixture mirrors the paper's TV domain enough to exercise every fixer.
func fixture() *schema.Database {
	channel := &schema.Table{
		Name:       "tv_channel",
		PrimaryKey: "id",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeNumber},
			{Name: "country", Type: schema.TypeText},
			{Name: "series_name", Type: schema.TypeText},
		},
		Rows: [][]schema.Value{
			{schema.N(1), schema.S("USA"), schema.S("Sky Radio")},
			{schema.N(2), schema.S("UK"), schema.S("Sky One")},
		},
	}
	cartoon := &schema.Table{
		Name:       "cartoon",
		PrimaryKey: "id",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeNumber},
			{Name: "channel_id", Type: schema.TypeNumber},
			{Name: "title", Type: schema.TypeText},
			{Name: "written_by", Type: schema.TypeText},
		},
		Rows: [][]schema.Value{
			{schema.N(1), schema.N(1), schema.S("Show A"), schema.S("Todd Casey")},
			{schema.N(2), schema.N(2), schema.S("Show B"), schema.S("Dana Flores")},
		},
	}
	return &schema.Database{
		Name:   "tv",
		Tables: []*schema.Table{channel, cartoon},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "cartoon", FromColumn: "channel_id", ToTable: "tv_channel", ToColumn: "id"},
		},
	}
}

func adapt(t *testing.T, sql string) (string, bool) {
	t.Helper()
	f := &Fixer{DB: fixture()}
	return f.Adapt(sql)
}

func TestValidSQLUnchanged(t *testing.T) {
	in := "SELECT country FROM tv_channel"
	out, ok := adapt(t, in)
	if !ok || out != in {
		t.Errorf("valid SQL perturbed: %q -> %q ok=%v", in, out, ok)
	}
}

func TestFixTableColumnMismatch(t *testing.T) {
	// title belongs to cartoon (T1), not tv_channel (T2): the Table 2 case.
	sql := "SELECT T2.title FROM cartoon AS T1 JOIN tv_channel AS T2 ON T1.channel_id = T2.id"
	out, ok := adapt(t, sql)
	if !ok {
		t.Fatalf("not fixed: %q", out)
	}
	if !strings.Contains(out, "T1.title") {
		t.Errorf("qualifier not corrected: %q", out)
	}
}

func TestFixColumnAmbiguity(t *testing.T) {
	sql := "SELECT id FROM cartoon JOIN tv_channel ON channel_id = country"
	// id is ambiguous (both tables); channel_id/country unique.
	out, ok := adapt(t, sql)
	if !ok {
		t.Fatalf("ambiguity not fixed: %q", out)
	}
	if _, err := sqlexec.ExecSQL(fixture(), out); err != nil {
		t.Errorf("fixed SQL does not execute: %v (%q)", err, out)
	}
}

func TestFixMissingTable(t *testing.T) {
	// written_by qualified by cartoon, which is absent from FROM.
	sql := "SELECT country FROM tv_channel WHERE cartoon.written_by = 'Todd Casey'"
	out, ok := adapt(t, sql)
	if !ok {
		t.Fatalf("missing table not fixed: %q", out)
	}
	if !strings.Contains(out, "JOIN cartoon") {
		t.Errorf("join not added: %q", out)
	}
}

func TestFixFunctionHallucination(t *testing.T) {
	sql := "SELECT CONCAT(series_name, ' ', country) FROM tv_channel"
	out, ok := adapt(t, sql)
	if !ok {
		t.Fatalf("CONCAT not fixed: %q", out)
	}
	if strings.Contains(out, "CONCAT") {
		t.Errorf("CONCAT survived: %q", out)
	}
}

func TestFixSchemaHallucination(t *testing.T) {
	// series_names (extra s) does not exist; edit distance finds series_name.
	sql := "SELECT series_names FROM tv_channel"
	out, ok := adapt(t, sql)
	if !ok {
		t.Fatalf("schema hallucination not fixed: %q", out)
	}
	if !strings.Contains(out, "series_name") || strings.Contains(out, "series_names") {
		t.Errorf("column not corrected: %q", out)
	}
}

func TestFixAggregationHallucination(t *testing.T) {
	sql := "SELECT COUNT(DISTINCT series_name, country) FROM tv_channel"
	out, ok := adapt(t, sql)
	if !ok {
		t.Fatalf("multi-arg aggregate not fixed: %q", out)
	}
	if !strings.Contains(out, "COUNT(DISTINCT series_name)") {
		t.Errorf("DISTINCT not preserved on first column: %q", out)
	}
}

func TestFixUnknownTable(t *testing.T) {
	sql := "SELECT country FROM tv_channels" // misspelled table
	out, ok := adapt(t, sql)
	if !ok || !strings.Contains(out, "FROM tv_channel") {
		t.Errorf("table not corrected: %q ok=%v", out, ok)
	}
}

func TestUnparseableSQLFails(t *testing.T) {
	if _, ok := adapt(t, "not really sql((("); ok {
		t.Error("garbage input reported as fixed")
	}
}

func TestAdaptBoundedAttempts(t *testing.T) {
	// A query needing several fixes still terminates.
	sql := "SELECT CONCAT(series_names, countrys) FROM tv_channels"
	out, _ := adapt(t, sql)
	if out == "" {
		t.Error("Adapt returned empty SQL")
	}
}

func TestVotePicksMajority(t *testing.T) {
	db := fixture()
	cands := []string{
		"SELECT country FROM tv_channel WHERE id = 1", // minority result
		"SELECT country FROM tv_channel",              // majority (x3)
		"SELECT country FROM tv_channel",
		"SELECT country FROM tv_channel",
	}
	got, ok := Vote(db, cands, true)
	if !ok || got != "SELECT country FROM tv_channel" {
		t.Errorf("Vote = %q, ok=%v", got, ok)
	}
}

func TestVoteFixesBeforeVoting(t *testing.T) {
	db := fixture()
	cands := []string{
		"SELECT CONCAT(series_name, country) FROM tv_channel", // fixable
		"SELECT series_name FROM tv_channel",
	}
	got, ok := Vote(db, cands, true)
	if !ok {
		t.Fatal("vote failed")
	}
	if _, err := sqlexec.ExecSQL(db, got); err != nil {
		t.Errorf("voted SQL does not execute: %v", err)
	}
}

func TestVoteNoFixSkipsBroken(t *testing.T) {
	db := fixture()
	cands := []string{
		"SELECT CONCAT(series_name, country) FROM tv_channel", // broken, not fixed
		"SELECT series_name FROM tv_channel",
	}
	got, ok := Vote(db, cands, false)
	if !ok || got != "SELECT series_name FROM tv_channel" {
		t.Errorf("Vote(no-fix) = %q ok=%v", got, ok)
	}
}

func TestVoteAllBroken(t *testing.T) {
	if _, ok := Vote(fixture(), []string{"garbage((", "more(("}, true); ok {
		t.Error("vote over unusable candidates should fail")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"kitten", "sitting", 3}, {"abc", "abc", 0},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSignatureOrderSensitivity(t *testing.T) {
	res1, err := sqlexec.ExecSQL(fixture(), "SELECT country FROM tv_channel ORDER BY country ASC")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sqlexec.ExecSQL(fixture(), "SELECT country FROM tv_channel ORDER BY country DESC")
	if err != nil {
		t.Fatal(err)
	}
	if Signature(res1) == Signature(res2) {
		t.Error("ordered results with different orders should differ")
	}
}
