package adaption

import (
	"testing"

	"repro/internal/spider"
	"repro/internal/sqlexec"
)

// BenchmarkConsistencyVote measures the Section IV-D2 execution-consistency
// vote — the second-hottest repeat-execution loop after the TS metric. The
// candidate set mirrors self-consistency sampling: duplicates dominate, so
// the shared plan cache turns most candidate executions into plan-cache
// hits. The Uncached variant resets the shared cache every iteration to
// expose the pre-refactor parse+plan-per-candidate cost.

func voteFixture(b *testing.B) (*spider.Corpus, []string) {
	b.Helper()
	c := spider.GenerateSmall(123, 0.05)
	e := c.Dev.Examples[0]
	base := e.GoldSQL
	candidates := []string{
		base, base, base, // self-consistency duplicates
		"SELECT nonexistent FROM " + e.Gold.From.Base.Table, // repairable/failing
		base,
	}
	return c, candidates
}

func BenchmarkConsistencyVote(b *testing.B) {
	c, candidates := voteFixture(b)
	db := c.Dev.Examples[0].DB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Vote(db, candidates, true); !ok {
			b.Fatal("vote found no executable candidate")
		}
	}
}

func BenchmarkConsistencyVoteUncached(b *testing.B) {
	c, candidates := voteFixture(b)
	db := c.Dev.Examples[0].DB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sqlexec.Shared.Reset() // every candidate pays parse + plan
		if _, ok := Vote(db, candidates, true); !ok {
			b.Fatal("vote found no executable candidate")
		}
	}
}
