// Package adaption implements PURPLE's database-adaption module
// (Section IV-D): heuristic repair of the six LLM hallucination classes of
// Table 2, applied only to SQL that fails execution (so valid SQL is never
// perturbed), plus the execution-consistency vote that picks the final
// translation from n sampled candidates.
package adaption

import (
	"errors"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlexec"
	"repro/internal/sqlir"
)

// MaxAttempts bounds repair iterations per query (the paper repairs up to
// five times).
const MaxAttempts = 5

// Fixer repairs SQL against one database.
type Fixer struct {
	DB *schema.Database
}

// Adapt repairs a SQL string until it executes or attempts are exhausted.
// It returns the (possibly rewritten) SQL and whether it now executes.
// Executable input is returned unchanged — the no-side-effect guarantee.
func (f *Fixer) Adapt(sql string) (string, bool) {
	sel, err := sqlir.Parse(sql)
	if err != nil {
		return sql, false
	}
	for attempt := 0; attempt < MaxAttempts; attempt++ {
		if _, err := sqlexec.Exec(f.DB, sel); err == nil {
			return sqlir.String(sel), true
		} else if !f.fix(sel, err) {
			return sqlir.String(sel), false
		}
	}
	_, err = sqlexec.Exec(f.DB, sel)
	return sqlir.String(sel), err == nil
}

// fix applies one repair for the classified error; it reports whether any
// change was made (no change means the error is not repairable).
func (f *Fixer) fix(sel *sqlir.Select, execErr error) bool {
	switch {
	case errors.Is(execErr, sqlexec.ErrUnknownFunction):
		return f.fixFunctionHallucination(sel)
	case errors.Is(execErr, sqlexec.ErrAggArity):
		return f.fixAggregationHallucination(sel)
	case errors.Is(execErr, sqlexec.ErrAmbiguousColumn):
		return f.fixAmbiguity(sel, execErr)
	case errors.Is(execErr, sqlexec.ErrUnknownColumn):
		return f.fixUnknownColumn(sel, execErr)
	case errors.Is(execErr, sqlexec.ErrUnknownTable):
		return f.fixUnknownTable(sel)
	}
	return false
}

// fixFunctionHallucination drops unsupported function calls, keeping the
// first column argument (the paper's immediate solution for CONCAT et al.).
func (f *Fixer) fixFunctionHallucination(sel *sqlir.Select) bool {
	changed := false
	var fixSel func(*sqlir.Select)
	fixSel = func(s *sqlir.Select) {
		for i, it := range s.Items {
			if a, ok := it.Expr.(*sqlir.Agg); ok && !sqlir.AggFuncs[a.Fn] {
				s.Items[i].Expr = firstColumnArg(a)
				changed = true
			}
		}
		sqlir.WalkSelects(s, func(sub *sqlir.Select) {
			if sub == s {
				return
			}
			for i, it := range sub.Items {
				if a, ok := it.Expr.(*sqlir.Agg); ok && !sqlir.AggFuncs[a.Fn] {
					sub.Items[i].Expr = firstColumnArg(a)
					changed = true
				}
			}
		})
	}
	fixSel(sel)
	return changed
}

func firstColumnArg(a *sqlir.Agg) sqlir.Expr {
	for _, arg := range a.Args {
		if c, ok := arg.(*sqlir.ColumnRef); ok {
			return c
		}
	}
	if len(a.Args) > 0 {
		return a.Args[0]
	}
	return &sqlir.Star{}
}

// fixAggregationHallucination truncates multi-argument aggregates to their
// first argument, preserving DISTINCT (the paper splits the COUNT; keeping
// the first distinct column preserves the dominant semantics).
func (f *Fixer) fixAggregationHallucination(sel *sqlir.Select) bool {
	changed := false
	sqlir.WalkSelects(sel, func(s *sqlir.Select) {
		sqlir.WalkExprs(s, func(e sqlir.Expr) {
			if a, ok := e.(*sqlir.Agg); ok && sqlir.AggFuncs[a.Fn] && len(a.Args) > 1 {
				a.Args = a.Args[:1]
				changed = true
			}
		})
	})
	return changed
}

// fixAmbiguity qualifies the ambiguous column with the first FROM table that
// has it (the paper assigns it to one of its potential tables).
func (f *Fixer) fixAmbiguity(sel *sqlir.Select, execErr error) bool {
	name := trailingName(execErr.Error())
	changed := false
	sqlir.WalkSelects(sel, func(s *sqlir.Select) {
		if changed {
			return
		}
		froms := fromTables(s)
		for _, tn := range froms {
			t := f.DB.Table(tn.table)
			if t == nil || !t.HasColumn(name) {
				continue
			}
			sqlir.WalkExprs(s, func(e sqlir.Expr) {
				if c, ok := e.(*sqlir.ColumnRef); ok && c.Table == "" && strings.EqualFold(c.Column, name) {
					c.Table = tn.ref
					changed = true
				}
			})
			if changed {
				return
			}
		}
	})
	return changed
}

type fromEntry struct {
	ref   string // name used in the query (alias or table)
	table string // underlying table
}

func fromTables(s *sqlir.Select) []fromEntry {
	out := []fromEntry{{s.From.Base.Name(), s.From.Base.Table}}
	for _, j := range s.From.Joins {
		out = append(out, fromEntry{j.Table.Name(), j.Table.Table})
	}
	return out
}

// fixUnknownColumn handles three of the paper's classes in order:
// Table-Column-Mismatch (column exists under another FROM table),
// Missing-Table (the qualifier names a real table absent from FROM), and
// Schema-Hallucination (replace with the minimum-edit-distance column).
func (f *Fixer) fixUnknownColumn(sel *sqlir.Select, execErr error) bool {
	full := trailingName(execErr.Error())
	qual, colName := "", full
	if i := strings.IndexByte(full, '.'); i >= 0 {
		qual, colName = full[:i], full[i+1:]
	}
	changed := false
	sqlir.WalkSelects(sel, func(s *sqlir.Select) {
		if changed {
			return
		}
		froms := fromTables(s)
		refMatches := func(c *sqlir.ColumnRef) bool {
			if !strings.EqualFold(c.Column, colName) {
				return false
			}
			if qual == "" {
				return c.Table == ""
			}
			return strings.EqualFold(c.Table, qual)
		}
		// (1) Table-Column-Mismatch: another FROM table has this column.
		for _, fe := range froms {
			t := f.DB.Table(fe.table)
			if t != nil && t.HasColumn(colName) {
				forEachRef(s, func(c *sqlir.ColumnRef) {
					if refMatches(c) {
						c.Table = fe.ref
						changed = true
					}
				})
				if changed {
					return
				}
			}
		}
		// (2) Missing-Table: qualifier names a real table not in FROM; join
		// it in through a foreign key with any FROM table.
		if qual != "" {
			if missing := f.DB.Table(qual); missing != nil && missing.HasColumn(colName) {
				for _, fe := range froms {
					if fk, ok := f.DB.FKBetween(fe.table, missing.Name); ok {
						var left, right *sqlir.ColumnRef
						if strings.EqualFold(fk.FromTable, fe.table) {
							left = &sqlir.ColumnRef{Table: fe.ref, Column: fk.FromColumn}
							right = &sqlir.ColumnRef{Table: missing.Name, Column: fk.ToColumn}
						} else {
							left = &sqlir.ColumnRef{Table: fe.ref, Column: fk.ToColumn}
							right = &sqlir.ColumnRef{Table: missing.Name, Column: fk.FromColumn}
						}
						s.From.Joins = append(s.From.Joins, sqlir.Join{
							Table: sqlir.TableRef{Table: missing.Name},
							Left:  left, Right: right,
						})
						changed = true
						return
					}
				}
			}
		}
		// (3) Schema-Hallucination: minimum string edit distance over the
		// columns of the FROM tables.
		best, bestDist := "", 1<<30
		bestRef := ""
		for _, fe := range froms {
			t := f.DB.Table(fe.table)
			if t == nil {
				continue
			}
			for _, c := range t.Columns {
				if d := editDistance(strings.ToLower(colName), strings.ToLower(c.Name)); d < bestDist {
					best, bestDist, bestRef = c.Name, d, fe.ref
				}
			}
		}
		if best != "" {
			forEachRef(s, func(c *sqlir.ColumnRef) {
				if refMatches(c) {
					c.Column = best
					if qual != "" {
						c.Table = bestRef
					}
					changed = true
				}
			})
		}
	})
	return changed
}

// fixUnknownTable replaces unknown table names by minimum edit distance.
func (f *Fixer) fixUnknownTable(sel *sqlir.Select) bool {
	changed := false
	sqlir.WalkSelects(sel, func(s *sqlir.Select) {
		fixRef := func(tr *sqlir.TableRef) {
			if f.DB.Table(tr.Table) != nil {
				return
			}
			best, bestDist := "", 1<<30
			for _, t := range f.DB.Tables {
				if d := editDistance(strings.ToLower(tr.Table), strings.ToLower(t.Name)); d < bestDist {
					best, bestDist = t.Name, d
				}
			}
			if best != "" {
				tr.Table = best
				changed = true
			}
		}
		fixRef(&s.From.Base)
		for i := range s.From.Joins {
			fixRef(&s.From.Joins[i].Table)
		}
	})
	return changed
}

func forEachRef(s *sqlir.Select, fn func(*sqlir.ColumnRef)) {
	sqlir.WalkExprs(s, func(e sqlir.Expr) {
		if c, ok := e.(*sqlir.ColumnRef); ok {
			fn(c)
		}
	})
	for _, j := range s.From.Joins {
		fn(j.Left)
		fn(j.Right)
	}
}

// trailingName extracts the item name from "no such column: X" style errors.
func trailingName(msg string) string {
	if i := strings.LastIndex(msg, ": "); i >= 0 {
		return msg[i+2:]
	}
	return msg
}

// editDistance is the Levenshtein distance.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Vote applies execution-consistency (Section IV-D2): each candidate is
// adapted (when fix is true), executed, and the first SQL whose execution
// result agrees with the majority result signature is returned. ok is false
// when no candidate executes.
//
// Candidate execution goes through the shared plan cache: self-consistency
// sampling routinely yields duplicate candidates within one vote (and
// identical candidates across repair attempts), so most executions skip
// parsing and planning.
func Vote(db *schema.Database, candidates []string, fix bool) (string, bool) {
	f := &Fixer{DB: db}
	type entry struct {
		sql string
		sig string
	}
	var entries []entry
	counts := map[string]int{}
	for _, sql := range candidates {
		fixed := sql
		if fix {
			var ok bool
			fixed, ok = f.Adapt(sql)
			if !ok {
				continue
			}
		}
		res, err := sqlexec.Shared.Exec(db, fixed)
		if err != nil {
			continue
		}
		sig := Signature(res)
		entries = append(entries, entry{fixed, sig})
		counts[sig]++
	}
	if len(entries) == 0 {
		return "", false
	}
	bestSig, bestCount := "", -1
	var sigs []string
	for s := range counts {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		if counts[s] > bestCount {
			bestSig, bestCount = s, counts[s]
		}
	}
	for _, e := range entries {
		if e.sig == bestSig {
			return e.sql, true
		}
	}
	return entries[0].sql, true
}

// Signature canonically encodes an execution result for consensus voting:
// rows sorted unless the query ordered them (sqlexec's one canonical
// result encoding).
func Signature(res *sqlexec.Result) string {
	return strings.Join(res.Canonical(), "\x1e")
}
