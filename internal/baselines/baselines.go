// Package baselines implements the comparison strategies of Section V-A3:
// ChatGPT-SQL (zero-shot), C3 (zero-shot with calibration instructions,
// schema reduction and execution consistency), DIN-SQL (few-shot
// chain-of-thought with a fixed demonstration pool and self-correction),
// DAIL-SQL (similarity-based demonstration selection), and a PLM-direct
// strategy standing in for the fine-tuned PICARD/RESDSQL/Graphix-T5 family.
package baselines

import (
	"sort"
	"strings"

	"repro/internal/adaption"
	"repro/internal/automaton"
	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/predictor"
	"repro/internal/prompt"
	"repro/internal/spider"
	"repro/internal/sqlir"
)

// ChatGPTSQL is the zero-shot probe of Liu et al.: full schema, plain
// instruction, single greedy sample, no repair.
type ChatGPTSQL struct {
	Client llm.Client
	Seed   int64
}

// Name implements core.Translator.
func (s *ChatGPTSQL) Name() string { return "ChatGPT-SQL(" + s.Client.Name() + ")" }

// Translate implements core.Translator.
func (s *ChatGPTSQL) Translate(e *spider.Example) core.Translation {
	built := prompt.Build("-- Translate the question into SQLite SQL.", nil, e.DB, e.NL, 0)
	resp := s.Client.Complete(llm.Request{
		Prompt: built.Text, N: 1, Task: e, SchemaInPrompt: e.DB,
		Seed: s.Seed*11_000_003 + int64(e.ID),
	})
	out := core.Translation{InputTokens: resp.InputTokens, OutputTokens: resp.OutputTokens}
	if len(resp.SQLs) > 0 {
		out.SQL = resp.SQLs[0]
	}
	return out
}

// C3 is the zero-shot calibration strategy of Dong et al.: instruction
// design, schema reduction, and execution-consistency voting (without SQL
// repair).
type C3 struct {
	Client      llm.Client
	Clf         *classifier.Model
	Consistency int // C3 burns ~7k output tokens; default 20 samples
	Seed        int64
}

// Name implements core.Translator.
func (s *C3) Name() string { return "C3(" + s.Client.Name() + ")" }

// Translate implements core.Translator.
func (s *C3) Translate(e *spider.Example) core.Translation {
	n := s.Consistency
	if n <= 0 {
		n = 20
	}
	taskDB := e.DB
	if s.Clf != nil {
		// C3's schema linking: top-k tables and columns, not Steiner-based.
		pcfg := classifier.PruneConfig{TauP: 0.5, TauN: 5, UseSteiner: false, TopK1: 3, TopK2: 5}
		taskDB = classifier.Prune(s.Clf, e.NL, taskDB, pcfg).DB
	}
	instructions := "-- Use only provided tables and columns. Prefer simple clear SQL. Do not use unsupported functions."
	built := prompt.Build(instructions, nil, taskDB, e.NL, 0)
	resp := s.Client.Complete(llm.Request{
		Prompt: built.Text, N: n, Task: e, SchemaInPrompt: taskDB,
		Calibrated: true,
		Seed:       s.Seed*13_000_003 + int64(e.ID),
	})
	out := core.Translation{InputTokens: resp.InputTokens, OutputTokens: resp.OutputTokens}
	if sql, ok := adaption.Vote(e.DB, resp.SQLs, false); ok {
		out.SQL = sql
	} else if len(resp.SQLs) > 0 {
		out.SQL = resp.SQLs[0]
	}
	return out
}

// DINSQL is the decomposed chain-of-thought strategy of Pourreza & Rafiei:
// a fixed demonstration pool (the most frequent training compositions),
// CoT prompting, one sample, then self-correction.
type DINSQL struct {
	Client llm.Client
	Seed   int64

	fixed []prompt.Demo
}

// NewDINSQL selects the fixed demonstration pool: the single most frequent
// training example per common skeleton, most frequent skeleton first.
func NewDINSQL(client llm.Client, train []*spider.Example, poolSize int, seed int64) *DINSQL {
	type group struct {
		first *spider.Example
		count int
	}
	groups := map[string]*group{}
	for _, e := range train {
		k := sqlir.SkeletonString(e.Gold)
		g := groups[k]
		if g == nil {
			groups[k] = &group{first: e, count: 1}
		} else {
			g.count++
		}
	}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if groups[keys[i]].count != groups[keys[j]].count {
			return groups[keys[i]].count > groups[keys[j]].count
		}
		return keys[i] < keys[j]
	})
	d := &DINSQL{Client: client, Seed: seed}
	for i := 0; i < poolSize && i < len(keys); i++ {
		e := groups[keys[i]].first
		d.fixed = append(d.fixed, demoFor(e))
	}
	return d
}

// Name implements core.Translator.
func (s *DINSQL) Name() string { return "DIN-SQL(" + s.Client.Name() + ")" }

// Translate implements core.Translator.
func (s *DINSQL) Translate(e *spider.Example) core.Translation {
	instructions := "-- Let's think step by step: link the schema, classify the question, then write the SQL."
	built := prompt.Build(instructions, s.fixed, e.DB, e.NL, 0)
	resp := s.Client.Complete(llm.Request{
		Prompt: built.Text, N: 1, Task: e, SchemaInPrompt: e.DB,
		CoT:  true,
		Seed: s.Seed*17_000_003 + int64(e.ID),
	})
	out := core.Translation{InputTokens: resp.InputTokens, OutputTokens: resp.OutputTokens, DemosUsed: len(s.fixed)}
	if len(resp.SQLs) == 0 {
		return out
	}
	// DIN-SQL's self-correction pass: repair non-executable output.
	f := &adaption.Fixer{DB: e.DB}
	if fixed, ok := f.Adapt(resp.SQLs[0]); ok {
		out.SQL = fixed
	} else {
		out.SQL = resp.SQLs[0]
	}
	return out
}

// DAILSQL is the similarity-based selection strategy of Gao et al.: it
// ranks demonstrations by Jaccard similarity of SQL-keyword sets (order-
// insensitive — the limitation PURPLE's automaton addresses) blended with
// NL word overlap, against a pre-predicted skeleton.
type DAILSQL struct {
	Client    llm.Client
	Pred      *predictor.Model
	MaxTokens int
	Seed      int64

	train []*spider.Example
	demos []prompt.Demo
	kws   [][]string // keyword set per demo
	words []map[string]bool
}

// NewDAILSQL prepares the demonstration pool.
func NewDAILSQL(client llm.Client, pred *predictor.Model, train []*spider.Example, maxTokens int, seed int64) *DAILSQL {
	d := &DAILSQL{Client: client, Pred: pred, MaxTokens: maxTokens, Seed: seed, train: train}
	for _, e := range train {
		d.demos = append(d.demos, demoFor(e))
		d.kws = append(d.kws, keywordSet(sqlir.Skeleton(e.Gold)))
		d.words = append(d.words, wordSet(e.NL))
	}
	return d
}

// Name implements core.Translator.
func (s *DAILSQL) Name() string { return "DAIL-SQL(" + s.Client.Name() + ")" }

// Translate implements core.Translator.
func (s *DAILSQL) Translate(e *spider.Example) core.Translation {
	preds := s.Pred.Predict(e.NL, 1)
	var predKw []string
	if len(preds) > 0 {
		predKw = keywordSet(preds[0].Tokens)
	}
	nlWords := wordSet(e.NL)
	type scored struct {
		idx   int
		score float64
	}
	ranking := make([]scored, len(s.demos))
	for i := range s.demos {
		ranking[i] = scored{i, 0.7*jaccard(predKw, s.kws[i]) + 0.3*jaccardSet(nlWords, s.words[i])}
	}
	sort.SliceStable(ranking, func(i, j int) bool { return ranking[i].score > ranking[j].score })
	ordered := make([]prompt.Demo, 0, len(ranking))
	for _, r := range ranking {
		ordered = append(ordered, s.demos[r.idx])
	}
	maxTok := s.MaxTokens
	if maxTok <= 0 {
		maxTok = 3072
	}
	built := prompt.Build("", ordered, e.DB, e.NL, maxTok)
	resp := s.Client.Complete(llm.Request{
		Prompt: built.Text, N: 1, Task: e, SchemaInPrompt: e.DB,
		Seed: s.Seed*19_000_003 + int64(e.ID),
	})
	out := core.Translation{InputTokens: resp.InputTokens, OutputTokens: resp.OutputTokens, DemosUsed: built.DemosUsed}
	if len(resp.SQLs) > 0 {
		out.SQL = resp.SQLs[0]
	}
	return out
}

// PLMDirect stands in for the fine-tuned PLM parsers (PICARD, RASAT,
// RESDSQL, Graphix-T5) in Table 4: a PLM-tier simulated model queried
// zero-shot (fine-tuned models take no demonstrations), no repair.
type PLMDirect struct {
	Label string // e.g. "RESDSQL"
	Seed  int64

	client llm.Client
}

// NewPLMDirect builds the PLM-family stand-in.
func NewPLMDirect(label string, seed int64) *PLMDirect {
	return &PLMDirect{Label: label, Seed: seed, client: llm.NewSim(llm.PLM)}
}

// Name implements core.Translator.
func (s *PLMDirect) Name() string { return s.Label }

// Translate implements core.Translator.
func (s *PLMDirect) Translate(e *spider.Example) core.Translation {
	built := prompt.Build("", nil, e.DB, e.NL, 0)
	resp := s.client.Complete(llm.Request{
		Prompt: built.Text, N: 1, Task: e, SchemaInPrompt: e.DB,
		Seed: s.Seed*23_000_003 + int64(e.ID),
	})
	out := core.Translation{InputTokens: resp.InputTokens, OutputTokens: resp.OutputTokens}
	if len(resp.SQLs) > 0 {
		out.SQL = resp.SQLs[0]
	}
	return out
}

// ---- shared helpers ----

// demoFor renders one training example as a pruned prompt demonstration.
func demoFor(e *spider.Example) prompt.Demo {
	usedT, usedC := classifier.UsedItems(e.Gold, e.DB)
	var keep []string
	keepCols := map[string]map[string]bool{}
	for t := range usedT {
		keep = append(keep, t)
		keepCols[t] = map[string]bool{}
	}
	for tc := range usedC {
		if i := strings.IndexByte(tc, '.'); i > 0 {
			if cols, ok := keepCols[tc[:i]]; ok {
				cols[tc[i+1:]] = true
			}
		}
	}
	return prompt.Demo{DB: e.DB.Prune(keep, keepCols), NL: e.NL, SQL: e.GoldSQL}
}

// keywordSet extracts the keyword multiset-as-set from skeleton tokens (the
// order-insensitive similarity DAIL-SQL uses).
func keywordSet(tokens []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range automaton.Abstract(tokens, automaton.Keywords) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

func wordSet(nl string) map[string]bool {
	out := map[string]bool{}
	for _, w := range strings.Fields(strings.ToLower(nl)) {
		out[strings.Trim(w, "?.',\"")] = true
	}
	return out
}

func jaccard(a, b []string) float64 {
	as := map[string]bool{}
	for _, x := range a {
		as[x] = true
	}
	inter, union := 0, len(as)
	seen := map[string]bool{}
	for _, x := range b {
		if seen[x] {
			continue
		}
		seen[x] = true
		if as[x] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func jaccardSet(a, b map[string]bool) float64 {
	inter, union := 0, 0
	for x := range a {
		union++
		if b[x] {
			inter++
		}
	}
	for x := range b {
		if !a[x] {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
