package baselines

import (
	"testing"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/predictor"
	"repro/internal/spider"
)

func fixtures(t *testing.T) (*spider.Corpus, *classifier.Model, *predictor.Model) {
	t.Helper()
	c := spider.GenerateSmall(55, 0.06)
	return c, classifier.Train(c.Train.Examples), predictor.Train(c.Train.Examples)
}

func runEM(t *testing.T, tr core.Translator, examples []*spider.Example) (em, ex float64) {
	t.Helper()
	var nem, nex int
	for _, e := range examples {
		res := tr.Translate(e)
		if res.SQL == "" {
			t.Fatalf("%s: empty SQL for %q", tr.Name(), e.NL)
		}
		if eval.ExactSetMatchSQL(res.SQL, e.GoldSQL) {
			nem++
		}
		if eval.ExecutionMatch(e.DB, res.SQL, e.GoldSQL) {
			nex++
		}
	}
	n := float64(len(examples))
	return 100 * float64(nem) / n, 100 * float64(nex) / n
}

func TestAllBaselinesProduceSQL(t *testing.T) {
	c, clf, pred := fixtures(t)
	dev := c.Dev.Examples[:20]
	for _, tr := range []core.Translator{
		&ChatGPTSQL{Client: llm.NewSim(llm.ChatGPT), Seed: 1},
		&C3{Client: llm.NewSim(llm.ChatGPT), Clf: clf, Consistency: 5, Seed: 1},
		NewDINSQL(llm.NewSim(llm.GPT4), c.Train.Examples, 8, 1),
		NewDAILSQL(llm.NewSim(llm.GPT4), pred, c.Train.Examples, 2048, 1),
		NewPLMDirect("RESDSQL", 1),
	} {
		for _, e := range dev {
			if res := tr.Translate(e); res.SQL == "" {
				t.Errorf("%s produced empty SQL", tr.Name())
				break
			}
		}
	}
}

// TestPaperOrderings asserts the qualitative Table 4 ordering at small
// scale: PURPLE-style few-shot retrieval (DAIL) beats fixed demos (DIN) on
// EM, and all few-shot beat zero-shot on EM.
func TestPaperOrderings(t *testing.T) {
	c, clf, pred := fixtures(t)
	dev := c.Dev.Examples
	if len(dev) > 80 {
		dev = dev[:80]
	}
	zeroEM, zeroEX := runEM(t, &ChatGPTSQL{Client: llm.NewSim(llm.ChatGPT), Seed: 1}, dev)
	dailEM, _ := runEM(t, NewDAILSQL(llm.NewSim(llm.GPT4), pred, c.Train.Examples, 3072, 1), dev)
	dinEM, _ := runEM(t, NewDINSQL(llm.NewSim(llm.GPT4), c.Train.Examples, 8, 1), dev)
	c3EM, c3EX := runEM(t, &C3{Client: llm.NewSim(llm.ChatGPT), Clf: clf, Consistency: 10, Seed: 1}, dev)

	if zeroEM >= zeroEX {
		t.Errorf("zero-shot EM (%.1f) should be far below EX (%.1f)", zeroEM, zeroEX)
	}
	if dailEM <= zeroEM {
		t.Errorf("DAIL-SQL EM (%.1f) should beat zero-shot EM (%.1f)", dailEM, zeroEM)
	}
	if dailEM < dinEM-8 {
		t.Errorf("DAIL-SQL EM (%.1f) should be at least around DIN-SQL EM (%.1f)", dailEM, dinEM)
	}
	if c3EX <= zeroEX-3 {
		t.Errorf("C3 EX (%.1f) should not trail zero-shot EX (%.1f)", c3EX, zeroEX)
	}
	_ = c3EM
}

func TestDINFixedPoolIsDeterministic(t *testing.T) {
	c, _, _ := fixtures(t)
	a := NewDINSQL(llm.NewSim(llm.GPT4), c.Train.Examples, 8, 1)
	b := NewDINSQL(llm.NewSim(llm.GPT4), c.Train.Examples, 8, 1)
	if len(a.fixed) != len(b.fixed) || len(a.fixed) == 0 {
		t.Fatalf("pool sizes differ or empty: %d vs %d", len(a.fixed), len(b.fixed))
	}
	for i := range a.fixed {
		if a.fixed[i].SQL != b.fixed[i].SQL {
			t.Error("fixed pool not deterministic")
		}
	}
}

func TestJaccard(t *testing.T) {
	if jaccard([]string{"a", "b"}, []string{"a", "b"}) != 1 {
		t.Error("identical sets should be 1")
	}
	if jaccard([]string{"a"}, []string{"b"}) != 0 {
		t.Error("disjoint sets should be 0")
	}
	if got := jaccard([]string{"a", "b"}, []string{"b", "c"}); got < 0.32 || got > 0.34 {
		t.Errorf("jaccard = %f, want 1/3", got)
	}
}

func TestDemoForPrunesSchema(t *testing.T) {
	c, _, _ := fixtures(t)
	e := c.Train.Examples[0]
	d := demoFor(e)
	var before, after int
	for _, tb := range e.DB.Tables {
		before += len(tb.Columns)
	}
	for _, tb := range d.DB.Tables {
		after += len(tb.Columns)
	}
	if after > before {
		t.Errorf("demo schema grew: %d -> %d", before, after)
	}
	if d.SQL != e.GoldSQL || d.NL != e.NL {
		t.Error("demo content mismatch")
	}
}
