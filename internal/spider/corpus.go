package spider

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/sqlir"
)

// Example is one NL2SQL task: an NL query over a database with its gold SQL.
type Example struct {
	ID      int
	DB      *schema.Database
	NL      string
	Gold    *sqlir.Select
	GoldSQL string
	Class   CompositionClass
	Variant string // "", "syn", "realistic", "dk"
	// LinkNoise is the extra schema-linking difficulty the variant's NL style
	// imposes on the simulated LLM (the lexical stress is additionally felt
	// by the trained classifier/predictor through their features).
	LinkNoise float64
	Hardness  string // easy / medium / hard / extra
}

// Benchmark is one evaluation split.
type Benchmark struct {
	Name      string
	Databases []*schema.Database
	Examples  []*Example
}

// Stats summarizes a benchmark for Table 3.
type Stats struct {
	Queries   int
	Databases int
	AvgNLLen  float64
	AvgSQLLen float64
}

// Stat computes the Table 3 statistics row for the benchmark.
func (b *Benchmark) Stat() Stats {
	var nl, sq int
	for _, e := range b.Examples {
		nl += len(e.NL)
		sq += len(e.GoldSQL)
	}
	n := len(b.Examples)
	if n == 0 {
		return Stats{Databases: len(b.Databases)}
	}
	return Stats{
		Queries:   n,
		Databases: len(b.Databases),
		AvgNLLen:  float64(nl) / float64(n),
		AvgSQLLen: float64(sq) / float64(n),
	}
}

// Corpus bundles the five splits of Table 3.
type Corpus struct {
	Train     *Benchmark
	Dev       *Benchmark
	DK        *Benchmark
	Syn       *Benchmark
	Realistic *Benchmark
}

// Sizes matching the paper's Table 3.
const (
	TrainQueries     = 8659
	DevQueries       = 1034
	DKQueries        = 535
	RealisticQueries = 508
	SynQueries       = 1034

	TrainDatabases = 146
	DevDatabases   = 20
	DKDatabases    = 10
)

// Generate builds the full corpus deterministically from a seed.
func Generate(seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))

	trainDBs, trainSpecs := makeDatabases(rng, 0, trainDomainCount, TrainDatabases)
	devDBs, devSpecs := makeDatabases(rng, trainDomainCount, len(domains), DevDatabases)
	dkDBs, dkSpecs := makeDatabases(rng, trainDomainCount, len(domains), DKDatabases)

	c := &Corpus{
		Train:     makeSplit("spider-train", trainDBs, trainSpecs, rng, StyleStandard, TrainQueries, 0),
		Dev:       makeSplit("spider-dev", devDBs, devSpecs, rng, StyleStandard, DevQueries, 0),
		DK:        makeSplit("spider-dk", dkDBs, dkSpecs, rng, StyleDK, DKQueries, 0.20),
		Syn:       makeSplit("spider-syn", devDBs, devSpecs, rng, StyleSyn, SynQueries, 0.15),
		Realistic: makeSplit("spider-realistic", devDBs, devSpecs, rng, StyleRealistic, RealisticQueries, 0.12),
	}
	tagVariant(c.DK, "dk")
	tagVariant(c.Syn, "syn")
	tagVariant(c.Realistic, "realistic")
	return c
}

// GenerateSmall builds a reduced corpus (scale in (0,1]) for fast tests and
// benchmarks; split proportions are preserved.
func GenerateSmall(seed int64, scale float64) *Corpus {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nTrainDB := maxInt(6, int(float64(TrainDatabases)*scale))
	nDevDB := maxInt(4, int(float64(DevDatabases)*scale))
	nDKDB := maxInt(2, int(float64(DKDatabases)*scale))
	trainDBs, trainSpecs := makeDatabases(rng, 0, trainDomainCount, nTrainDB)
	devDBs, devSpecs := makeDatabases(rng, trainDomainCount, len(domains), nDevDB)
	dkDBs, dkSpecs := makeDatabases(rng, trainDomainCount, len(domains), nDKDB)
	n := func(full int) int { return maxInt(20, int(float64(full)*scale)) }
	c := &Corpus{
		Train:     makeSplit("spider-train", trainDBs, trainSpecs, rng, StyleStandard, n(TrainQueries), 0),
		Dev:       makeSplit("spider-dev", devDBs, devSpecs, rng, StyleStandard, n(DevQueries), 0),
		DK:        makeSplit("spider-dk", dkDBs, dkSpecs, rng, StyleDK, n(DKQueries), 0.20),
		Syn:       makeSplit("spider-syn", devDBs, devSpecs, rng, StyleSyn, n(SynQueries), 0.15),
		Realistic: makeSplit("spider-realistic", devDBs, devSpecs, rng, StyleRealistic, n(RealisticQueries), 0.12),
	}
	tagVariant(c.DK, "dk")
	tagVariant(c.Syn, "syn")
	tagVariant(c.Realistic, "realistic")
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// makeDatabases instantiates count databases by cycling over the domain
// range [lo, hi).
func makeDatabases(rng *rand.Rand, lo, hi, count int) ([]*schema.Database, []domainSpec) {
	var dbs []*schema.Database
	var specs []domainSpec
	for i := 0; i < count; i++ {
		spec := domains[lo+i%(hi-lo)]
		instance := i / (hi - lo)
		dbs = append(dbs, buildDatabase(spec, instance, rng))
		specs = append(specs, spec)
	}
	return dbs, specs
}

func makeSplit(name string, dbs []*schema.Database, specs []domainSpec, rng *rand.Rand, style Style, count int, noise float64) *Benchmark {
	b := &Benchmark{Name: name, Databases: dbs}
	for i := 0; i < count; i++ {
		di := i % len(dbs)
		ex := sampleExample(dbs[di], specs[di], rng, style)
		sel := ex.sel
		e := &Example{
			ID:        i,
			DB:        dbs[di],
			NL:        ex.nl,
			Gold:      sel,
			GoldSQL:   sqlir.String(sel),
			Class:     ex.class,
			LinkNoise: noise,
			Hardness:  Hardness(sel),
		}
		b.Examples = append(b.Examples, e)
	}
	return b
}

func tagVariant(b *Benchmark, v string) {
	for _, e := range b.Examples {
		e.Variant = v
	}
}

// String implements fmt.Stringer for quick corpus inspection.
func (c *Corpus) String() string {
	row := func(b *Benchmark) string {
		s := b.Stat()
		return fmt.Sprintf("%-18s queries=%-5d dbs=%-3d avgNL=%.1f avgSQL=%.1f",
			b.Name, s.Queries, s.Databases, s.AvgNLLen, s.AvgSQLLen)
	}
	return row(c.Train) + "\n" + row(c.Dev) + "\n" + row(c.DK) + "\n" + row(c.Syn) + "\n" + row(c.Realistic)
}
