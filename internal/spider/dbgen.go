package spider

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/schema"
)

// buildDatabase instantiates one database from a domain template. instance
// differentiates multiple databases drawn from the same domain (Spider's
// training set contains several databases per broad domain); it suffixes the
// database name only, keeping table/column names stable so NL realization
// stays natural.
func buildDatabase(spec domainSpec, instance int, rng *rand.Rand) *schema.Database {
	name := spec.name
	if instance > 0 {
		name = fmt.Sprintf("%s_%d", spec.name, instance)
	}
	db := &schema.Database{Name: name}
	for ei, ent := range spec.entities {
		t := &schema.Table{
			Name:       ent.name,
			NLName:     ent.nl,
			PrimaryKey: "id",
		}
		t.Columns = append(t.Columns, schema.Column{Name: "id", Type: schema.TypeNumber, NLName: "id"})
		for _, p := range ent.parents {
			parent := spec.entities[p]
			fkCol := parent.name + "_id"
			t.Columns = append(t.Columns, schema.Column{Name: fkCol, Type: schema.TypeNumber, NLName: parent.nl + " id"})
			db.ForeignKeys = append(db.ForeignKeys, schema.ForeignKey{
				FromTable: ent.name, FromColumn: fkCol, ToTable: parent.name, ToColumn: "id",
			})
		}
		for _, a := range ent.attrs {
			typ := schema.TypeText
			switch a.pool {
			case poolYear, poolSmall, poolBig, poolMoney, poolRate:
				typ = schema.TypeNumber
			}
			t.Columns = append(t.Columns, schema.Column{Name: a.name, Type: typ, NLName: a.nl})
		}
		db.Tables = append(db.Tables, t)
		_ = ei
	}
	populate(db, spec, rng)
	return db
}

// populate fills tables with rows. Row counts and value distributions are
// tuned so that aggregates, duplicates (DISTINCT matters) and empty
// predicate results all occur.
func populate(db *schema.Database, spec domainSpec, rng *rand.Rand) {
	rowCounts := make(map[string]int)
	for ti, ent := range spec.entities {
		t := db.Tables[ti]
		n := 12 + rng.Intn(24)
		rowCounts[ent.name] = n
		for i := 0; i < n; i++ {
			row := make([]schema.Value, len(t.Columns))
			ci := 0
			row[ci] = schema.N(float64(i + 1))
			ci++
			for _, p := range ent.parents {
				parentRows := rowCounts[spec.entities[p].name]
				// ~8% NULL FKs so IS NULL predicates and join drops occur.
				if rng.Float64() < 0.08 {
					row[ci] = schema.Null()
				} else {
					row[ci] = schema.N(float64(1 + rng.Intn(parentRows)))
				}
				ci++
			}
			for _, a := range ent.attrs {
				row[ci] = genValue(a.pool, spec, rng)
				ci++
			}
			t.Rows = append(t.Rows, row)
		}
	}
}

func genValue(pool attrPool, spec domainSpec, rng *rand.Rand) schema.Value {
	switch pool {
	case poolPerson:
		return schema.S(personNames[rng.Intn(len(personNames))])
	case poolCity:
		return schema.S(cityNames[rng.Intn(len(cityNames))])
	case poolCountry:
		return schema.S(countryNames[rng.Intn(len(countryNames))])
	case poolWord:
		w := spec.words[rng.Intn(len(spec.words))]
		// Half the time decorate the word so text columns have variety while
		// keeping frequent duplicates.
		if rng.Float64() < 0.5 {
			return schema.S(w)
		}
		return schema.S(w + " " + cityNames[rng.Intn(len(cityNames))])
	case poolYear:
		return schema.N(float64(1950 + rng.Intn(74)))
	case poolSmall:
		return schema.N(float64(1 + rng.Intn(100)))
	case poolBig:
		return schema.N(float64(100 + rng.Intn(9900)))
	case poolMoney:
		return schema.N(float64(rng.Intn(499000)+1000) / 100.0)
	case poolRate:
		return schema.N(float64(1 + rng.Intn(10)))
	}
	return schema.Null()
}

// nlNameOf returns the natural-language name of a column in a table.
func nlNameOf(db *schema.Database, table, column string) string {
	t := db.Table(table)
	if t == nil {
		return column
	}
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, column) {
			if c.NLName != "" {
				return c.NLName
			}
			return c.Name
		}
	}
	return column
}
