package spider

import "repro/internal/sqlir"

// Hardness classifies a query into Spider's official hardness buckets
// (easy / medium / hard / extra) using the component-count heuristic from
// the Spider evaluation script: "components1" counts surface clauses and
// operators, "components2" counts advanced constructs (nesting, set
// operations), and thresholds map the pair to a bucket.
func Hardness(sel *sqlir.Select) string {
	c1, c2 := components(sel)
	switch {
	case c1 <= 1 && c2 == 0:
		return "easy"
	case c1 <= 2 && c2 == 0:
		return "medium"
	case (c1 <= 4 && c2 == 0) || (c1 <= 1 && c2 <= 1):
		return "hard"
	default:
		return "extra"
	}
}

func components(sel *sqlir.Select) (c1, c2 int) {
	if sel.Where != nil {
		c1++
		// extra predicates beyond the first
		c1 += countLogic(sel.Where)
	}
	if len(sel.GroupBy) > 0 {
		c1++
	}
	if sel.Having != nil {
		c1++
	}
	if len(sel.OrderBy) > 0 {
		c1++
	}
	if sel.HasLimit {
		c1++
	}
	if len(sel.From.Joins) > 0 {
		c1 += len(sel.From.Joins)
	}
	if len(sel.Items) > 2 {
		c1++
	}
	aggs := 0
	sqlir.WalkExprs(sel, func(e sqlir.Expr) {
		switch v := e.(type) {
		case *sqlir.Agg:
			if sqlir.AggFuncs[v.Fn] {
				aggs++
			}
		case *sqlir.Like:
			c1++
		case *sqlir.Binary:
			if v.Op == "OR" {
				c1++
			}
		}
	})
	if aggs > 1 {
		c1++
	}
	// components2: nesting and set operations
	nested := 0
	sqlir.WalkExprs(sel, func(e sqlir.Expr) {
		switch v := e.(type) {
		case *sqlir.In:
			if v.Sub != nil {
				nested++
			}
		case *sqlir.Subquery:
			nested++
		case *sqlir.Exists:
			nested++
		}
	})
	c2 += nested
	if sel.Compound != nil {
		c2++
		rc1, rc2 := components(sel.Compound.Right)
		// fold in the right side's complexity at a discount
		c1 += rc1 / 2
		c2 += rc2
	}
	return c1, c2
}

func countLogic(e sqlir.Expr) int {
	switch v := e.(type) {
	case *sqlir.Binary:
		if v.Op == "AND" || v.Op == "OR" {
			return 1 + countLogic(v.L) + countLogic(v.R)
		}
	case *sqlir.Not:
		return countLogic(v.E)
	}
	return 0
}
