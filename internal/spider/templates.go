package spider

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlir"
)

// Style selects the NL realization variant.
type Style int

// NL realization styles, one per benchmark split family.
const (
	StyleStandard  Style = iota // Spider: NL mentions schema terms directly
	StyleSyn                    // Spider-SYN: schema terms replaced by synonyms
	StyleRealistic              // Spider-Realistic: explicit column mentions dropped
	StyleDK                     // Spider-DK: domain-knowledge hypernyms
)

// CompositionClass labels the logical-operator-composition family a query
// belongs to. The SimLLM's prior (its "basic SQL knowledge") is correct for
// the easy classes and systematically naive for the hard ones; providing a
// demonstration with a matching composition corrects it (the paper's thesis).
type CompositionClass string

// Composition classes produced by the sampler.
const (
	ClassPlain         CompositionClass = "plain"
	ClassDistinct      CompositionClass = "distinct"
	ClassCountDistinct CompositionClass = "count_distinct"
	ClassJoin          CompositionClass = "join"
	ClassGroup         CompositionClass = "group"
	ClassGroupHaving   CompositionClass = "group_having"
	ClassOrderLimit    CompositionClass = "order_limit"
	ClassSuperlative   CompositionClass = "superlative"
	ClassArgmaxGroup   CompositionClass = "argmax_group"
	ClassInSub         CompositionClass = "in_sub"
	ClassExclusion     CompositionClass = "exclusion_simple"
	ClassExclusionJoin CompositionClass = "exclusion_join"
	ClassIntersect     CompositionClass = "intersect"
	ClassUnion         CompositionClass = "union"
)

// genExample is a sampled (SQL, NL) pair before corpus assembly.
type genExample struct {
	sel   *sqlir.Select
	nl    string
	class CompositionClass
}

// sampler bundles what templates need.
type sampler struct {
	db    *schema.Database
	spec  domainSpec
	rng   *rand.Rand
	style Style
}

// templates lists the sampling functions with weights tuned to yield a
// long-tailed skeleton distribution like Spider's (the paper reports
// Detail:Keywords:Structure:Clause END-state proportions of 912:708:363:59).
var templates = []struct {
	weight int
	fn     func(*sampler) *genExample
}{
	{10, (*sampler).projection},
	{9, (*sampler).projectionWhere},
	{6, (*sampler).projectionWhereTwo},
	{5, (*sampler).distinctProjection},
	{7, (*sampler).countAll},
	{7, (*sampler).aggColumn},
	{4, (*sampler).countDistinct},
	{9, (*sampler).joinProjection},
	{4, (*sampler).joinTwoHop},
	{6, (*sampler).groupByCount},
	{5, (*sampler).groupHaving},
	{4, (*sampler).groupJoinCount},
	{7, (*sampler).orderByLimit},
	{5, (*sampler).superlativeSubquery},
	{4, (*sampler).argmaxGroup},
	{5, (*sampler).inSubquery},
	{4, (*sampler).notInSubquery},
	{4, (*sampler).exceptJoin},
	{3, (*sampler).intersectJoin},
	{4, (*sampler).unionTwoValues},
	{4, (*sampler).betweenPredicate},
	{4, (*sampler).likePredicate},
}

var totalTemplateWeight = func() int {
	s := 0
	for _, t := range templates {
		s += t.weight
	}
	return s
}()

// sampleExample draws one example; it retries templates that do not apply to
// the database shape.
func sampleExample(db *schema.Database, spec domainSpec, rng *rand.Rand, style Style) *genExample {
	s := &sampler{db: db, spec: spec, rng: rng, style: style}
	for tries := 0; tries < 64; tries++ {
		r := rng.Intn(totalTemplateWeight)
		for _, t := range templates {
			r -= t.weight
			if r < 0 {
				if ex := t.fn(s); ex != nil {
					return ex
				}
				break
			}
		}
	}
	// Projection always applies.
	return s.projection()
}

// ---------- column/value pickers ----------

func (s *sampler) anyTable() *schema.Table {
	return s.db.Tables[s.rng.Intn(len(s.db.Tables))]
}

// dataColumns returns non-key columns of t.
func dataColumns(t *schema.Table) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		if c.Name == "id" || strings.HasSuffix(c.Name, "_id") {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (s *sampler) pickCol(t *schema.Table) (schema.Column, bool) {
	cols := dataColumns(t)
	if len(cols) == 0 {
		return schema.Column{}, false
	}
	return cols[s.rng.Intn(len(cols))], true
}

func (s *sampler) pickTypedCol(t *schema.Table, typ schema.ColType) (schema.Column, bool) {
	var cands []schema.Column
	for _, c := range dataColumns(t) {
		if c.Type == typ {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return schema.Column{}, false
	}
	return cands[s.rng.Intn(len(cands))], true
}

// pickValue draws an existing value from a column so predicates are
// non-trivially selective.
func (s *sampler) pickValue(t *schema.Table, c schema.Column) (schema.Value, bool) {
	vals := s.db.RepresentativeValues(t.Name, c.Name, 10)
	if len(vals) == 0 {
		return schema.Value{}, false
	}
	return vals[s.rng.Intn(len(vals))], true
}

// fkPair returns a child table, its FK column and the parent table.
func (s *sampler) fkPair() (child *schema.Table, fk schema.ForeignKey, parent *schema.Table, ok bool) {
	if len(s.db.ForeignKeys) == 0 {
		return nil, schema.ForeignKey{}, nil, false
	}
	f := s.db.ForeignKeys[s.rng.Intn(len(s.db.ForeignKeys))]
	return s.db.Table(f.FromTable), f, s.db.Table(f.ToTable), true
}

func lit(v schema.Value) sqlir.Expr {
	if v.Kind == schema.KindStr {
		return &sqlir.Literal{IsString: true, Str: v.Str}
	}
	return &sqlir.Literal{Num: v.Num, Raw: trimFloat(v.Num)}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

func col(table, name string) *sqlir.ColumnRef { return &sqlir.ColumnRef{Table: table, Column: name} }

// ---------- NL building blocks ----------

var cmpOps = []string{">", "<", ">=", "<=", "="}

func (s *sampler) cmpOpFor(c schema.Column) string {
	if c.Type == schema.TypeText {
		return "="
	}
	return cmpOps[s.rng.Intn(len(cmpOps))]
}

func opPhrase(op string) string {
	switch op {
	case ">":
		return "greater than"
	case "<":
		return "less than"
	case ">=":
		return "at least"
	case "<=":
		return "at most"
	case "!=":
		return "not"
	default:
		return ""
	}
}

// colNL renders a column's NL name under the current style.
func (s *sampler) colNL(c schema.Column) string {
	name := c.NLName
	if name == "" {
		name = strings.ReplaceAll(c.Name, "_", " ")
	}
	switch s.style {
	case StyleSyn:
		return synonymize(name)
	case StyleDK:
		return hypernym(name, c)
	default:
		return name
	}
}

func (s *sampler) tableNL(t *schema.Table, plural bool) string {
	name := t.NLName
	if name == "" {
		name = strings.ReplaceAll(t.Name, "_", " ")
	}
	if s.style == StyleSyn {
		name = synonymize(name)
	}
	if plural {
		return pluralize(name)
	}
	return name
}

func pluralize(s string) string {
	switch {
	case strings.HasSuffix(s, "s"), strings.HasSuffix(s, "sh"), strings.HasSuffix(s, "ch"):
		return s + "es"
	case strings.HasSuffix(s, "y") && len(s) > 1 && !strings.ContainsRune("aeiou", rune(s[len(s)-2])):
		return s[:len(s)-1] + "ies"
	default:
		return s + "s"
	}
}

// synonymize replaces whole words using synonymMap.
func synonymize(phrase string) string {
	words := strings.Fields(phrase)
	for i, w := range words {
		if syn, ok := synonymMap[strings.ToLower(w)]; ok {
			words[i] = syn
		}
	}
	out := strings.Join(words, " ")
	if syn, ok := synonymMap[strings.ToLower(phrase)]; ok {
		out = syn
	}
	return out
}

// hypernym renders a column name as a vaguer domain-knowledge phrase.
func hypernym(name string, c schema.Column) string {
	if c.Type == schema.TypeNumber {
		return "recorded figure for " + name
	}
	return "listed " + name
}

// wherePhrase renders one comparison predicate in NL.
func (s *sampler) wherePhrase(c schema.Column, op string, v schema.Value) string {
	val := v.String()
	if s.style == StyleRealistic {
		// Drop the explicit column mention (the Spider-Realistic stress).
		switch op {
		case ">":
			return "with over " + val
		case "<":
			return "with under " + val
		case ">=":
			return "with no less than " + val
		case "<=":
			return "with no more than " + val
		default:
			return "matching " + val
		}
	}
	phrase := opPhrase(op)
	if phrase == "" {
		return fmt.Sprintf("whose %s is %s", s.colNL(c), val)
	}
	return fmt.Sprintf("whose %s is %s %s", s.colNL(c), phrase, val)
}

// ---------- templates ----------

func (s *sampler) projection() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	nl := fmt.Sprintf("What are the %ss of all %s", s.colNL(c), s.tableNL(t, true))
	if c2, ok2 := s.pickCol(t); ok2 && c2.Name != c.Name && s.rng.Float64() < 0.35 {
		sel.Items = append(sel.Items, sqlir.SelectItem{Expr: col("", c2.Name)})
		nl = fmt.Sprintf("List the %s and %s of every %s", s.colNL(c), s.colNL(c2), s.tableNL(t, false))
	}
	nl += s.maybeOrderTail(sel, t, 0.25)
	return &genExample{sel: sel, nl: nl + "?", class: ClassPlain}
}

func (s *sampler) projectionWhere() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	w, ok := s.pickCol(t)
	if !ok || w.Name == c.Name {
		return nil
	}
	v, ok := s.pickValue(t, w)
	if !ok {
		return nil
	}
	op := s.cmpOpFor(w)
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.Where = &sqlir.Binary{Op: op, L: col("", w.Name), R: lit(v)}
	nl := fmt.Sprintf("What are the %ss of %s %s?", s.colNL(c), s.tableNL(t, true), s.wherePhrase(w, op, v))
	return &genExample{sel: sel, nl: nl, class: ClassPlain}
}

func (s *sampler) projectionWhereTwo() *genExample {
	t := s.anyTable()
	cols := dataColumns(t)
	if len(cols) < 3 {
		return nil
	}
	perm := s.rng.Perm(len(cols))
	c, w1, w2 := cols[perm[0]], cols[perm[1]], cols[perm[2]]
	v1, ok1 := s.pickValue(t, w1)
	v2, ok2 := s.pickValue(t, w2)
	if !ok1 || !ok2 {
		return nil
	}
	op1, op2 := s.cmpOpFor(w1), s.cmpOpFor(w2)
	logic := "AND"
	word := "and"
	if s.rng.Float64() < 0.35 {
		logic, word = "OR", "or"
	}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.Where = &sqlir.Binary{Op: logic,
		L: &sqlir.Binary{Op: op1, L: col("", w1.Name), R: lit(v1)},
		R: &sqlir.Binary{Op: op2, L: col("", w2.Name), R: lit(v2)},
	}
	nl := fmt.Sprintf("What are the %ss of %s %s %s %s?", s.colNL(c), s.tableNL(t, true),
		s.wherePhrase(w1, op1, v1), word, s.wherePhrase(w2, op2, v2))
	return &genExample{sel: sel, nl: nl, class: ClassPlain}
}

func (s *sampler) distinctProjection() *genExample {
	t := s.anyTable()
	c, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok {
		return nil
	}
	sel := sqlir.NewSelect()
	sel.Distinct = true
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	nl := fmt.Sprintf("What are the distinct %ss of %s?", s.colNL(c), s.tableNL(t, true))
	if w, ok := s.pickCol(t); ok && w.Name != c.Name && s.rng.Float64() < 0.4 {
		if v, okv := s.pickValue(t, w); okv {
			op := s.cmpOpFor(w)
			sel.Where = &sqlir.Binary{Op: op, L: col("", w.Name), R: lit(v)}
			nl = fmt.Sprintf("What are the distinct %ss of %s %s?", s.colNL(c), s.tableNL(t, true), s.wherePhrase(w, op, v))
		}
	}
	return &genExample{sel: sel, nl: nl, class: ClassDistinct}
}

func (s *sampler) countAll() *genExample {
	t := s.anyTable()
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: &sqlir.Agg{Fn: "COUNT", Args: []sqlir.Expr{&sqlir.Star{}}}}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	nl := fmt.Sprintf("How many %s are there?", s.tableNL(t, true))
	if w, ok := s.pickCol(t); ok && s.rng.Float64() < 0.5 {
		if v, okv := s.pickValue(t, w); okv {
			op := s.cmpOpFor(w)
			sel.Where = &sqlir.Binary{Op: op, L: col("", w.Name), R: lit(v)}
			nl = fmt.Sprintf("How many %s are there %s?", s.tableNL(t, true), s.wherePhrase(w, op, v))
		}
	}
	return &genExample{sel: sel, nl: nl, class: ClassPlain}
}

var aggWords = map[string]string{"AVG": "average", "MAX": "maximum", "MIN": "minimum", "SUM": "total"}

// maybeWhere attaches a comparison predicate to sel with the given
// probability and returns the NL fragment ("" when none was added). The
// operator variety multiplies the Keywords-level skeleton space, giving the
// corpus a long tail like Spider's.
func (s *sampler) maybeWhere(sel *sqlir.Select, t *schema.Table, avoid string, prob float64) string {
	if s.rng.Float64() >= prob {
		return ""
	}
	w, ok := s.pickCol(t)
	if !ok || w.Name == avoid {
		return ""
	}
	v, ok := s.pickValue(t, w)
	if !ok {
		return ""
	}
	op := s.cmpOpFor(w)
	pred := &sqlir.Binary{Op: op, L: col("", w.Name), R: lit(v)}
	if sel.Where == nil {
		sel.Where = pred
	} else {
		sel.Where = &sqlir.Binary{Op: "AND", L: sel.Where, R: pred}
	}
	return " " + s.wherePhrase(w, op, v)
}

// maybeOrderTail appends an ORDER BY (and sometimes LIMIT) to sel and
// returns the NL fragment.
func (s *sampler) maybeOrderTail(sel *sqlir.Select, t *schema.Table, prob float64) string {
	if s.rng.Float64() >= prob || len(sel.GroupBy) > 0 || sel.Compound != nil {
		return ""
	}
	o, ok := s.pickTypedCol(t, schema.TypeNumber)
	if !ok {
		return ""
	}
	desc := s.rng.Float64() < 0.5
	sel.OrderBy = []sqlir.OrderItem{{Expr: col("", o.Name), Desc: desc}}
	dir := "ascending"
	if desc {
		dir = "descending"
	}
	frag := fmt.Sprintf(", sorted by %s in %s order", s.colNL(o), dir)
	if s.rng.Float64() < 0.4 {
		n := 1 + s.rng.Intn(6)
		sel.Limit, sel.HasLimit = n, true
		frag += fmt.Sprintf(", showing only %d", n)
	}
	return frag
}

func (s *sampler) aggColumn() *genExample {
	t := s.anyTable()
	c, ok := s.pickTypedCol(t, schema.TypeNumber)
	if !ok {
		return nil
	}
	fns := []string{"AVG", "MAX", "MIN", "SUM"}
	fn := fns[s.rng.Intn(len(fns))]
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: &sqlir.Agg{Fn: fn, Args: []sqlir.Expr{col("", c.Name)}}}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	nl := fmt.Sprintf("What is the %s %s of %s", aggWords[fn], s.colNL(c), s.tableNL(t, true))
	if fn == "MAX" || fn == "MIN" {
		if s.rng.Float64() < 0.3 {
			other := "MIN"
			if fn == "MIN" {
				other = "MAX"
			}
			sel.Items = append(sel.Items, sqlir.SelectItem{Expr: &sqlir.Agg{Fn: other, Args: []sqlir.Expr{col("", c.Name)}}})
			nl = fmt.Sprintf("What are the %s and %s %s of %s", aggWords[fn], aggWords[other], s.colNL(c), s.tableNL(t, true))
		}
	}
	nl += s.maybeWhere(sel, t, c.Name, 0.45)
	return &genExample{sel: sel, nl: nl + "?", class: ClassPlain}
}

func (s *sampler) countDistinct() *genExample {
	t := s.anyTable()
	c, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok {
		return nil
	}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: &sqlir.Agg{Fn: "COUNT", Distinct: true, Args: []sqlir.Expr{col("", c.Name)}}}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	nl := fmt.Sprintf("How many different %ss appear among %s", s.colNL(c), s.tableNL(t, true))
	nl += s.maybeWhere(sel, t, c.Name, 0.4)
	return &genExample{sel: sel, nl: nl + "?", class: ClassCountDistinct}
}

func (s *sampler) joinProjection() *genExample {
	child, fk, parent, ok := s.fkPair()
	if !ok || child == nil || parent == nil {
		return nil
	}
	cc, ok := s.pickCol(child)
	if !ok {
		return nil
	}
	pc, ok := s.pickCol(parent)
	if !ok {
		return nil
	}
	v, ok := s.pickValue(parent, pc)
	if !ok {
		return nil
	}
	op := s.cmpOpFor(pc)
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("T1", cc.Name)}}
	sel.From = sqlir.From{
		Base: sqlir.TableRef{Table: child.Name, Alias: "T1"},
		Joins: []sqlir.Join{{
			Table: sqlir.TableRef{Table: parent.Name, Alias: "T2"},
			Left:  col("T1", fk.FromColumn), Right: col("T2", fk.ToColumn),
		}},
	}
	sel.Where = &sqlir.Binary{Op: op, L: col("T2", pc.Name), R: lit(v)}
	nl := fmt.Sprintf("What are the %ss of %s whose %s has %s %s %s",
		s.colNL(cc), s.tableNL(child, true), s.tableNL(parent, false),
		s.colNL(pc), orEqual(opPhrase(op)), v.String())
	// Optional extra child-side predicate widens the skeleton tail.
	if cc2, ok2 := s.pickCol(child); ok2 && cc2.Name != cc.Name && s.rng.Float64() < 0.3 {
		if v2, okv := s.pickValue(child, cc2); okv {
			op2 := s.cmpOpFor(cc2)
			sel.Where = &sqlir.Binary{Op: "AND", L: sel.Where,
				R: &sqlir.Binary{Op: op2, L: col("T1", cc2.Name), R: lit(v2)}}
			nl += " and " + s.wherePhrase(cc2, op2, v2)
		}
	}
	return &genExample{sel: sel, nl: nl + "?", class: ClassJoin}
}

func orEqual(phrase string) string {
	if phrase == "" {
		return "equal to"
	}
	return phrase
}

// joinTwoHop builds a three-table chain join when the FK graph allows it.
func (s *sampler) joinTwoHop() *genExample {
	for _, fk1 := range s.db.ForeignKeys {
		for _, fk2 := range s.db.ForeignKeys {
			if fk1.FromTable == fk2.FromTable && fk1.ToTable != fk2.ToTable {
				// bridge: fk1.From references two parents
				bridge := s.db.Table(fk1.FromTable)
				p1 := s.db.Table(fk1.ToTable)
				p2 := s.db.Table(fk2.ToTable)
				c1, ok1 := s.pickCol(p1)
				c2, ok2 := s.pickCol(p2)
				if !ok1 || !ok2 {
					continue
				}
				v, okv := s.pickValue(p2, c2)
				if !okv {
					continue
				}
				sel := sqlir.NewSelect()
				sel.Items = []sqlir.SelectItem{{Expr: col("T2", c1.Name)}}
				sel.From = sqlir.From{
					Base: sqlir.TableRef{Table: bridge.Name, Alias: "T1"},
					Joins: []sqlir.Join{
						{Table: sqlir.TableRef{Table: p1.Name, Alias: "T2"},
							Left: col("T1", fk1.FromColumn), Right: col("T2", fk1.ToColumn)},
						{Table: sqlir.TableRef{Table: p2.Name, Alias: "T3"},
							Left: col("T1", fk2.FromColumn), Right: col("T3", fk2.ToColumn)},
					},
				}
				op := s.cmpOpFor(c2)
				sel.Where = &sqlir.Binary{Op: op, L: col("T3", c2.Name), R: lit(v)}
				nl := fmt.Sprintf("What are the %ss of %s involved in %s whose %s %s is %s %s?",
					s.colNL(c1), s.tableNL(p1, true), s.tableNL(bridge, true),
					s.tableNL(p2, false), s.colNL(c2), orEqual(opPhrase(op)), v.String())
				return &genExample{sel: sel, nl: nl, class: ClassJoin}
			}
		}
	}
	return nil
}

func (s *sampler) groupByCount() *genExample {
	t := s.anyTable()
	c, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok {
		return nil
	}
	sel := sqlir.NewSelect()
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.GroupBy = []*sqlir.ColumnRef{col("", c.Name)}
	var nl string
	if num, okN := s.pickTypedCol(t, schema.TypeNumber); okN && s.rng.Float64() < 0.35 {
		fn := []string{"AVG", "SUM", "MAX", "MIN"}[s.rng.Intn(4)]
		sel.Items = []sqlir.SelectItem{
			{Expr: col("", c.Name)},
			{Expr: &sqlir.Agg{Fn: fn, Args: []sqlir.Expr{col("", num.Name)}}},
		}
		nl = fmt.Sprintf("For each %s, what is the %s %s of %s", s.colNL(c), aggWords[fn], s.colNL(num), s.tableNL(t, true))
	} else {
		sel.Items = []sqlir.SelectItem{
			{Expr: col("", c.Name)},
			{Expr: &sqlir.Agg{Fn: "COUNT", Args: []sqlir.Expr{&sqlir.Star{}}}},
		}
		nl = fmt.Sprintf("For each %s, how many %s are there", s.colNL(c), s.tableNL(t, true))
	}
	nl += s.maybeWhere(sel, t, c.Name, 0.3)
	return &genExample{sel: sel, nl: nl + "?", class: ClassGroup}
}

func (s *sampler) groupHaving() *genExample {
	t := s.anyTable()
	c, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok {
		return nil
	}
	n := 2 + s.rng.Intn(3)
	op := []string{">=", ">", "="}[s.rng.Intn(3)]
	opWord := map[string]string{">=": "at least", ">": "more than", "=": "exactly"}[op]
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.GroupBy = []*sqlir.ColumnRef{col("", c.Name)}
	var nl string
	if num, okN := s.pickTypedCol(t, schema.TypeNumber); okN && s.rng.Float64() < 0.3 {
		vals := s.db.RepresentativeValues(t.Name, num.Name, 6)
		if len(vals) > 0 {
			v := vals[s.rng.Intn(len(vals))]
			fn := []string{"AVG", "SUM"}[s.rng.Intn(2)]
			sel.Having = &sqlir.Binary{Op: op,
				L: &sqlir.Agg{Fn: fn, Args: []sqlir.Expr{col("", num.Name)}},
				R: lit(v),
			}
			nl = fmt.Sprintf("Which %ss have a %s %s of %s %s?", s.colNL(c), aggWords[fn], s.colNL(num), opWord, v.String())
			return &genExample{sel: sel, nl: nl, class: ClassGroupHaving}
		}
	}
	sel.Having = &sqlir.Binary{Op: op,
		L: &sqlir.Agg{Fn: "COUNT", Args: []sqlir.Expr{&sqlir.Star{}}},
		R: &sqlir.Literal{Num: float64(n), Raw: fmt.Sprintf("%d", n)},
	}
	nl = fmt.Sprintf("Which %ss are shared by %s %d %s?", s.colNL(c), opWord, n, s.tableNL(t, true))
	return &genExample{sel: sel, nl: nl, class: ClassGroupHaving}
}

func (s *sampler) groupJoinCount() *genExample {
	child, fk, parent, ok := s.fkPair()
	if !ok || child == nil || parent == nil {
		return nil
	}
	pc, ok := s.pickTypedCol(parent, schema.TypeText)
	if !ok {
		return nil
	}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{
		{Expr: col("T2", pc.Name)},
		{Expr: &sqlir.Agg{Fn: "COUNT", Args: []sqlir.Expr{&sqlir.Star{}}}},
	}
	sel.From = sqlir.From{
		Base: sqlir.TableRef{Table: child.Name, Alias: "T1"},
		Joins: []sqlir.Join{{
			Table: sqlir.TableRef{Table: parent.Name, Alias: "T2"},
			Left:  col("T1", fk.FromColumn), Right: col("T2", fk.ToColumn),
		}},
	}
	sel.GroupBy = []*sqlir.ColumnRef{col("T2", pc.Name)}
	nl := fmt.Sprintf("For each %s of a %s, count the number of %s.",
		s.colNL(pc), s.tableNL(parent, false), s.tableNL(child, true))
	return &genExample{sel: sel, nl: nl, class: ClassGroup}
}

func (s *sampler) orderByLimit() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	o, ok := s.pickTypedCol(t, schema.TypeNumber)
	if !ok || o.Name == c.Name {
		return nil
	}
	n := 1 + s.rng.Intn(5)
	desc := s.rng.Float64() < 0.6
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.OrderBy = []sqlir.OrderItem{{Expr: col("", o.Name), Desc: desc}}
	sel.Limit, sel.HasLimit = n, true
	dir := "highest"
	if !desc {
		dir = "lowest"
	}
	nl := fmt.Sprintf("List the %ss of the %d %s with the %s %s.",
		s.colNL(c), n, s.tableNL(t, true), dir, s.colNL(o))
	return &genExample{sel: sel, nl: nl, class: ClassOrderLimit}
}

func (s *sampler) superlativeSubquery() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	o, ok := s.pickTypedCol(t, schema.TypeNumber)
	if !ok || o.Name == c.Name {
		return nil
	}
	fn := "MAX"
	dir := "highest"
	if s.rng.Float64() < 0.4 {
		fn, dir = "MIN", "lowest"
	}
	inner := sqlir.NewSelect()
	inner.Items = []sqlir.SelectItem{{Expr: &sqlir.Agg{Fn: fn, Args: []sqlir.Expr{col("", o.Name)}}}}
	inner.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.Where = &sqlir.Binary{Op: "=", L: col("", o.Name), R: &sqlir.Subquery{Sel: inner}}
	nl := fmt.Sprintf("What are the %ss of every %s that has the %s %s?",
		s.colNL(c), s.tableNL(t, false), dir, s.colNL(o))
	return &genExample{sel: sel, nl: nl, class: ClassSuperlative}
}

func (s *sampler) argmaxGroup() *genExample {
	t := s.anyTable()
	c, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok {
		return nil
	}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.GroupBy = []*sqlir.ColumnRef{col("", c.Name)}
	sel.OrderBy = []sqlir.OrderItem{{Expr: &sqlir.Agg{Fn: "COUNT", Args: []sqlir.Expr{&sqlir.Star{}}}, Desc: true}}
	sel.Limit, sel.HasLimit = 1, true
	nl := fmt.Sprintf("Which %s is most common among %s?", s.colNL(c), s.tableNL(t, true))
	return &genExample{sel: sel, nl: nl, class: ClassArgmaxGroup}
}

func (s *sampler) inSubquery() *genExample {
	child, fk, parent, ok := s.fkPair()
	if !ok || child == nil || parent == nil {
		return nil
	}
	cc, ok := s.pickCol(child)
	if !ok {
		return nil
	}
	pc, ok := s.pickCol(parent)
	if !ok {
		return nil
	}
	v, ok := s.pickValue(parent, pc)
	if !ok {
		return nil
	}
	inner := sqlir.NewSelect()
	inner.Items = []sqlir.SelectItem{{Expr: col("", fk.ToColumn)}}
	inner.From = sqlir.From{Base: sqlir.TableRef{Table: parent.Name}}
	op := s.cmpOpFor(pc)
	inner.Where = &sqlir.Binary{Op: op, L: col("", pc.Name), R: lit(v)}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", cc.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: child.Name}}
	sel.Where = &sqlir.In{E: col("", fk.FromColumn), Sub: inner}
	nl := fmt.Sprintf("Find the %ss of %s belonging to a %s whose %s is %s %s.",
		s.colNL(cc), s.tableNL(child, true), s.tableNL(parent, false),
		s.colNL(pc), orEqual(opPhrase(op)), v.String())
	return &genExample{sel: sel, nl: nl, class: ClassInSub}
}

func (s *sampler) notInSubquery() *genExample {
	child, fk, parent, ok := s.fkPair()
	if !ok || child == nil || parent == nil {
		return nil
	}
	pc, ok := s.pickCol(parent)
	if !ok {
		return nil
	}
	inner := sqlir.NewSelect()
	inner.Items = []sqlir.SelectItem{{Expr: col("", fk.FromColumn)}}
	inner.From = sqlir.From{Base: sqlir.TableRef{Table: child.Name}}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", pc.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: parent.Name}}
	sel.Where = &sqlir.In{E: col("", fk.ToColumn), Sub: inner, Negate: true}
	nl := fmt.Sprintf("What are the %ss of %s that do not have any %s",
		s.colNL(pc), s.tableNL(parent, true), s.tableNL(child, false))
	if cc, okc := s.pickCol(child); okc && s.rng.Float64() < 0.4 {
		if v, okv := s.pickValue(child, cc); okv {
			op := s.cmpOpFor(cc)
			inner.Where = &sqlir.Binary{Op: op, L: col("", cc.Name), R: lit(v)}
			nl = fmt.Sprintf("What are the %ss of %s that do not have a %s %s",
				s.colNL(pc), s.tableNL(parent, true), s.tableNL(child, false),
				s.wherePhrase(cc, op, v))
		}
	}
	return &genExample{sel: sel, nl: nl + "?", class: ClassExclusion}
}

// exceptJoin reproduces the paper's Figure 1 pattern: entities not related to
// a qualifying child row, requiring EXCEPT with a join for set semantics.
func (s *sampler) exceptJoin() *genExample {
	child, fk, parent, ok := s.fkPair()
	if !ok || child == nil || parent == nil {
		return nil
	}
	pc, ok := s.pickTypedCol(parent, schema.TypeText)
	if !ok {
		return nil
	}
	cc, ok := s.pickCol(child)
	if !ok {
		return nil
	}
	v, ok := s.pickValue(child, cc)
	if !ok {
		return nil
	}
	left := sqlir.NewSelect()
	left.Items = []sqlir.SelectItem{{Expr: col("", pc.Name)}}
	left.From = sqlir.From{Base: sqlir.TableRef{Table: parent.Name}}
	right := sqlir.NewSelect()
	right.Items = []sqlir.SelectItem{{Expr: col("T1", pc.Name)}}
	right.From = sqlir.From{
		Base: sqlir.TableRef{Table: parent.Name, Alias: "T1"},
		Joins: []sqlir.Join{{
			Table: sqlir.TableRef{Table: child.Name, Alias: "T2"},
			Left:  col("T1", fk.ToColumn), Right: col("T2", fk.FromColumn),
		}},
	}
	right.Where = &sqlir.Binary{Op: "=", L: col("T2", cc.Name), R: lit(v)}
	left.Compound = &sqlir.Compound{Op: "EXCEPT", Right: right}
	nl := fmt.Sprintf("What are the %ss of %s that are not linked to %s whose %s is %s?",
		s.colNL(pc), s.tableNL(parent, true), s.tableNL(child, true), s.colNL(cc), v.String())
	return &genExample{sel: left, nl: nl, class: ClassExclusionJoin}
}

func (s *sampler) intersectJoin() *genExample {
	child, fk, parent, ok := s.fkPair()
	if !ok || child == nil || parent == nil {
		return nil
	}
	pc, ok := s.pickTypedCol(parent, schema.TypeText)
	if !ok {
		return nil
	}
	cc, ok := s.pickTypedCol(child, schema.TypeText)
	if !ok {
		return nil
	}
	vals := s.db.RepresentativeValues(child.Name, cc.Name, 10)
	if len(vals) < 2 {
		return nil
	}
	v1, v2 := vals[0], vals[1]
	mk := func(v schema.Value) *sqlir.Select {
		q := sqlir.NewSelect()
		q.Items = []sqlir.SelectItem{{Expr: col("T1", pc.Name)}}
		q.From = sqlir.From{
			Base: sqlir.TableRef{Table: parent.Name, Alias: "T1"},
			Joins: []sqlir.Join{{
				Table: sqlir.TableRef{Table: child.Name, Alias: "T2"},
				Left:  col("T1", fk.ToColumn), Right: col("T2", fk.FromColumn),
			}},
		}
		q.Where = &sqlir.Binary{Op: "=", L: col("T2", cc.Name), R: lit(v)}
		return q
	}
	left := mk(v1)
	left.Compound = &sqlir.Compound{Op: "INTERSECT", Right: mk(v2)}
	nl := fmt.Sprintf("Which %ss of %s are linked to both a %s with %s %s and one with %s %s?",
		s.colNL(pc), s.tableNL(parent, true), s.tableNL(child, false),
		s.colNL(cc), v1.String(), s.colNL(cc), v2.String())
	return &genExample{sel: left, nl: nl, class: ClassIntersect}
}

func (s *sampler) unionTwoValues() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	w, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok || w.Name == c.Name {
		return nil
	}
	vals := s.db.RepresentativeValues(t.Name, w.Name, 10)
	if len(vals) < 2 {
		return nil
	}
	v1, v2 := vals[0], vals[1]
	mk := func(v schema.Value) *sqlir.Select {
		q := sqlir.NewSelect()
		q.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
		q.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
		q.Where = &sqlir.Binary{Op: "=", L: col("", w.Name), R: lit(v)}
		return q
	}
	left := mk(v1)
	left.Compound = &sqlir.Compound{Op: "UNION", Right: mk(v2)}
	nl := fmt.Sprintf("What are the %ss of %s whose %s is either %s or %s?",
		s.colNL(c), s.tableNL(t, true), s.colNL(w), v1.String(), v2.String())
	return &genExample{sel: left, nl: nl, class: ClassUnion}
}

func (s *sampler) betweenPredicate() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	w, ok := s.pickTypedCol(t, schema.TypeNumber)
	if !ok || w.Name == c.Name {
		return nil
	}
	vals := s.db.RepresentativeValues(t.Name, w.Name, 10)
	if len(vals) < 2 {
		return nil
	}
	lo, hi := vals[0].Num, vals[1].Num
	if lo > hi {
		lo, hi = hi, lo
	}
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.Where = &sqlir.Between{E: col("", w.Name),
		Lo: &sqlir.Literal{Num: lo, Raw: trimFloat(lo)},
		Hi: &sqlir.Literal{Num: hi, Raw: trimFloat(hi)}}
	nl := fmt.Sprintf("What are the %ss of %s whose %s is between %s and %s?",
		s.colNL(c), s.tableNL(t, true), s.colNL(w), trimFloat(lo), trimFloat(hi))
	return &genExample{sel: sel, nl: nl, class: ClassPlain}
}

func (s *sampler) likePredicate() *genExample {
	t := s.anyTable()
	c, ok := s.pickCol(t)
	if !ok {
		return nil
	}
	w, ok := s.pickTypedCol(t, schema.TypeText)
	if !ok || w.Name == c.Name {
		return nil
	}
	v, ok := s.pickValue(t, w)
	if !ok {
		return nil
	}
	word := strings.Fields(v.Str)[0]
	sel := sqlir.NewSelect()
	sel.Items = []sqlir.SelectItem{{Expr: col("", c.Name)}}
	sel.From = sqlir.From{Base: sqlir.TableRef{Table: t.Name}}
	sel.Where = &sqlir.Like{E: col("", w.Name), Pattern: &sqlir.Literal{IsString: true, Str: "%" + word + "%"}}
	nl := fmt.Sprintf("What are the %ss of %s whose %s contains the word %s?",
		s.colNL(c), s.tableNL(t, true), s.colNL(w), word)
	return &genExample{sel: sel, nl: nl, class: ClassPlain}
}
