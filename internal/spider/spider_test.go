package spider

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlexec"
	"repro/internal/sqlir"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	return GenerateSmall(42, 0.05)
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateSmall(7, 0.03)
	b := GenerateSmall(7, 0.03)
	if len(a.Dev.Examples) != len(b.Dev.Examples) {
		t.Fatal("sizes differ across runs with same seed")
	}
	for i := range a.Dev.Examples {
		if a.Dev.Examples[i].GoldSQL != b.Dev.Examples[i].GoldSQL || a.Dev.Examples[i].NL != b.Dev.Examples[i].NL {
			t.Fatalf("example %d differs across identical seeds", i)
		}
	}
}

func TestCorpusSplitSizes(t *testing.T) {
	c := smallCorpus(t)
	for _, b := range []*Benchmark{c.Train, c.Dev, c.DK, c.Syn, c.Realistic} {
		if len(b.Examples) == 0 {
			t.Errorf("%s: empty split", b.Name)
		}
		if len(b.Databases) == 0 {
			t.Errorf("%s: no databases", b.Name)
		}
	}
	if len(c.Train.Examples) <= len(c.Dev.Examples) {
		t.Error("train should be larger than dev")
	}
}

func TestFullSizesMatchTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	c := Generate(1)
	checks := []struct {
		b    *Benchmark
		q, d int
	}{
		{c.Train, TrainQueries, TrainDatabases},
		{c.Dev, DevQueries, DevDatabases},
		{c.DK, DKQueries, DKDatabases},
		{c.Syn, SynQueries, DevDatabases},
		{c.Realistic, RealisticQueries, DevDatabases},
	}
	for _, ck := range checks {
		if len(ck.b.Examples) != ck.q {
			t.Errorf("%s: %d queries, want %d", ck.b.Name, len(ck.b.Examples), ck.q)
		}
		if len(ck.b.Databases) != ck.d {
			t.Errorf("%s: %d databases, want %d", ck.b.Name, len(ck.b.Databases), ck.d)
		}
	}
}

// TestGoldExecutes is the load-bearing invariant: every generated gold SQL
// parses, round-trips and executes without error on its database.
func TestGoldExecutes(t *testing.T) {
	c := smallCorpus(t)
	for _, b := range []*Benchmark{c.Train, c.Dev, c.DK, c.Syn, c.Realistic} {
		for _, e := range b.Examples {
			sel, err := sqlir.Parse(e.GoldSQL)
			if err != nil {
				t.Fatalf("%s #%d: gold does not parse: %v\nSQL: %s", b.Name, e.ID, err, e.GoldSQL)
			}
			if got := sqlir.String(sel); got != e.GoldSQL {
				t.Fatalf("%s #%d: gold not canonical:\n%s\n%s", b.Name, e.ID, e.GoldSQL, got)
			}
			if _, err := sqlexec.Exec(e.DB, e.Gold); err != nil {
				t.Fatalf("%s #%d: gold does not execute: %v\nSQL: %s", b.Name, e.ID, err, e.GoldSQL)
			}
		}
	}
}

func TestSkeletonDiversity(t *testing.T) {
	c := smallCorpus(t)
	skeletons := map[string]bool{}
	for _, e := range c.Train.Examples {
		skeletons[sqlir.SkeletonString(e.Gold)] = true
	}
	if len(skeletons) < 15 {
		t.Errorf("only %d distinct skeletons in train; need a long tail", len(skeletons))
	}
}

func TestHardnessDistribution(t *testing.T) {
	c := smallCorpus(t)
	counts := map[string]int{}
	for _, e := range c.Dev.Examples {
		counts[e.Hardness]++
	}
	for _, h := range []string{"easy", "medium", "hard", "extra"} {
		if counts[h] == 0 {
			t.Errorf("hardness bucket %q empty: %v", h, counts)
		}
	}
}

func TestHardnessMonotone(t *testing.T) {
	easy := sqlir.MustParse("SELECT name FROM singer")
	medium := sqlir.MustParse("SELECT name FROM singer WHERE age > 5 AND country = 'US'")
	extra := sqlir.MustParse("SELECT name FROM a WHERE x NOT IN (SELECT y FROM b) UNION SELECT name FROM c WHERE z = 1 AND w = 2")
	if Hardness(easy) != "easy" {
		t.Errorf("simple select classified %s", Hardness(easy))
	}
	if Hardness(medium) == "easy" {
		t.Errorf("two-predicate select classified easy")
	}
	if Hardness(extra) != "extra" && Hardness(extra) != "hard" {
		t.Errorf("nested+union classified %s", Hardness(extra))
	}
}

func TestVariantStylesDiffer(t *testing.T) {
	c := smallCorpus(t)
	joinNL := func(b *Benchmark) string {
		var sb strings.Builder
		for _, e := range b.Examples[:10] {
			sb.WriteString(e.NL)
		}
		return sb.String()
	}
	std := joinNL(c.Dev)
	syn := joinNL(c.Syn)
	if std == syn {
		t.Error("SYN NL identical to standard NL")
	}
	for _, e := range c.Syn.Examples {
		if e.Variant != "syn" {
			t.Fatalf("variant tag missing: %q", e.Variant)
		}
		if e.LinkNoise == 0 {
			t.Fatal("SYN examples should carry link noise")
		}
	}
}

func TestSynonymizeReplacesSchemaTerms(t *testing.T) {
	got := synonymize("band name")
	if got == "band name" {
		t.Errorf("synonymize did not replace: %q", got)
	}
	if !strings.Contains(got, "music group") {
		t.Errorf("expected music group synonym, got %q", got)
	}
}

func TestRealisticDropsColumnMentions(t *testing.T) {
	// Realistic style comparison phrases never mention the column name.
	s := &sampler{style: StyleRealistic}
	c := domainColumn()
	p := s.wherePhrase(c, ">", numVal(40))
	if strings.Contains(p, c.NLName) {
		t.Errorf("realistic phrase mentions column: %q", p)
	}
}

func TestDatabaseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := buildDatabase(domains[0], 0, rng)
	if db.Name != "concert" {
		t.Errorf("db name %q", db.Name)
	}
	if len(db.Tables) != 3 {
		t.Errorf("want 3 tables, got %d", len(db.Tables))
	}
	if len(db.ForeignKeys) != 2 {
		t.Errorf("want 2 FKs, got %d", len(db.ForeignKeys))
	}
	for _, tb := range db.Tables {
		if len(tb.Rows) < 12 {
			t.Errorf("table %s underpopulated: %d rows", tb.Name, len(tb.Rows))
		}
		if tb.PrimaryKey != "id" {
			t.Errorf("table %s missing pk", tb.Name)
		}
	}
	inst := buildDatabase(domains[0], 2, rng)
	if inst.Name != "concert_2" {
		t.Errorf("instance naming: %q", inst.Name)
	}
}

func TestClassCoverage(t *testing.T) {
	c := GenerateSmall(11, 0.12)
	seen := map[CompositionClass]int{}
	for _, e := range c.Train.Examples {
		seen[e.Class]++
	}
	for _, cl := range []CompositionClass{ClassPlain, ClassJoin, ClassGroup, ClassExclusionJoin,
		ClassSuperlative, ClassIntersect, ClassUnion, ClassCountDistinct, ClassOrderLimit} {
		if seen[cl] == 0 {
			t.Errorf("composition class %s never sampled: %v", cl, seen)
		}
	}
}

func TestTableStats(t *testing.T) {
	c := smallCorpus(t)
	s := c.Dev.Stat()
	if s.Queries != len(c.Dev.Examples) || s.Databases != len(c.Dev.Databases) {
		t.Errorf("stat mismatch: %+v", s)
	}
	if s.AvgNLLen <= 0 || s.AvgSQLLen <= 0 {
		t.Errorf("length stats not positive: %+v", s)
	}
}

// domainColumn builds a column fixture for the realistic-style test.
func domainColumn() schema.Column {
	return schema.Column{Name: "age", NLName: "age", Type: schema.TypeNumber}
}

func numVal(n float64) schema.Value { return schema.N(n) }
