// Package spider generates the synthetic cross-domain NL2SQL corpus that
// stands in for the Spider benchmark family (Spider, Spider-DK, Spider-SYN,
// Spider-Realistic). It provides domain schema templates, database
// instantiation with data, a SQL sampler over a Spider-style grammar, an NL
// realizer, benchmark splits matching the paper's Table 3, and the official
// hardness heuristic.
package spider

// attrPool names a value generator for a column.
type attrPool int

const (
	poolPerson attrPool = iota // person names
	poolCity
	poolCountry
	poolWord  // domain-flavoured noun
	poolYear  // 1950..2023
	poolSmall // 1..100
	poolBig   // 100..10000
	poolMoney // 10.0..5000.0
	poolRate  // 1..10
)

// attrSpec describes one column of an entity template.
type attrSpec struct {
	name string // SQL column name
	nl   string // natural-language rendering
	pool attrPool
}

// entitySpec describes one table template within a domain.
type entitySpec struct {
	name   string // SQL table name
	nl     string // singular NL name
	plural string // plural NL name
	attrs  []attrSpec
	// parents lists indices of entities this one references via FK
	// (<entity>_id columns are added automatically).
	parents []int
}

// domainSpec groups entities into a coherent domain.
type domainSpec struct {
	name     string
	entities []entitySpec
	words    []string // domain-flavoured noun pool
}

func text(name, nl string, pool attrPool) attrSpec { return attrSpec{name, nl, pool} }

// domains is the template library. The first trainDomains entries seed the
// training split; the remainder are reserved for dev/variant splits so that
// evaluation databases are unseen at training time (the paper's
// cross-database setting).
var domains = []domainSpec{
	{
		name:  "concert",
		words: []string{"rock", "jazz", "pop", "folk", "metal", "indie", "soul", "blues"},
		entities: []entitySpec{
			{name: "band", nl: "band", plural: "bands", attrs: []attrSpec{
				text("band_name", "band name", poolWord), text("genre", "genre", poolWord),
				text("formed_year", "formation year", poolYear), text("members", "member count", poolSmall)}},
			{name: "singer", nl: "singer", plural: "singers", parents: []int{0}, attrs: []attrSpec{
				text("singer_name", "singer name", poolPerson), text("age", "age", poolSmall),
				text("country", "country", poolCountry), text("net_worth", "net worth", poolMoney)}},
			{name: "concert", nl: "concert", plural: "concerts", parents: []int{0}, attrs: []attrSpec{
				text("venue", "venue", poolCity), text("attendance", "attendance", poolBig),
				text("concert_year", "concert year", poolYear)}},
		},
	},
	{
		name:  "school",
		words: []string{"algebra", "history", "physics", "drawing", "music", "biology", "chemistry", "literature"},
		entities: []entitySpec{
			{name: "department", nl: "department", plural: "departments", attrs: []attrSpec{
				text("dept_name", "department name", poolWord), text("budget", "budget", poolMoney),
				text("building", "building", poolCity)}},
			{name: "teacher", nl: "teacher", plural: "teachers", parents: []int{0}, attrs: []attrSpec{
				text("teacher_name", "teacher name", poolPerson), text("age", "age", poolSmall),
				text("hometown", "hometown", poolCity), text("salary", "salary", poolMoney)}},
			{name: "course", nl: "course", plural: "courses", parents: []int{0, 1}, attrs: []attrSpec{
				text("course_name", "course name", poolWord), text("credits", "credit count", poolRate),
				text("enrollment", "enrollment", poolBig)}},
		},
	},
	{
		name:  "flight",
		words: []string{"cargo", "charter", "regional", "domestic", "international", "express", "budget", "luxury"},
		entities: []entitySpec{
			{name: "airline", nl: "airline", plural: "airlines", attrs: []attrSpec{
				text("airline_name", "airline name", poolWord), text("country", "country", poolCountry),
				text("fleet_size", "fleet size", poolSmall), text("founded", "founding year", poolYear)}},
			{name: "airport", nl: "airport", plural: "airports", attrs: []attrSpec{
				text("airport_name", "airport name", poolCity), text("city", "city", poolCity),
				text("capacity", "capacity", poolBig)}},
			{name: "flight", nl: "flight", plural: "flights", parents: []int{0, 1}, attrs: []attrSpec{
				text("flight_no", "flight number", poolBig), text("distance", "distance", poolBig),
				text("price", "price", poolMoney)}},
		},
	},
	{
		name:  "employee",
		words: []string{"engineering", "marketing", "finance", "legal", "support", "research", "design", "operations"},
		entities: []entitySpec{
			{name: "company", nl: "company", plural: "companies", attrs: []attrSpec{
				text("company_name", "company name", poolWord), text("industry", "industry", poolWord),
				text("revenue", "revenue", poolMoney), text("headquarter", "headquarter city", poolCity)}},
			{name: "employee", nl: "employee", plural: "employees", parents: []int{0}, attrs: []attrSpec{
				text("emp_name", "employee name", poolPerson), text("age", "age", poolSmall),
				text("salary", "salary", poolMoney), text("city", "city", poolCity)}},
			{name: "evaluation", nl: "evaluation", plural: "evaluations", parents: []int{1}, attrs: []attrSpec{
				text("year_awarded", "award year", poolYear), text("bonus", "bonus", poolMoney)}},
		},
	},
	{
		name:  "pets",
		words: []string{"dog", "cat", "bird", "hamster", "rabbit", "lizard", "ferret", "turtle"},
		entities: []entitySpec{
			{name: "student", nl: "student", plural: "students", attrs: []attrSpec{
				text("student_name", "student name", poolPerson), text("age", "age", poolSmall),
				text("major", "major", poolWord), text("city_code", "city code", poolCity)}},
			{name: "pet", nl: "pet", plural: "pets", parents: []int{0}, attrs: []attrSpec{
				text("pet_type", "pet type", poolWord), text("pet_age", "pet age", poolSmall),
				text("weight", "weight", poolSmall)}},
		},
	},
	{
		name:  "car",
		words: []string{"sedan", "coupe", "wagon", "hatchback", "convertible", "pickup", "van", "suv"},
		entities: []entitySpec{
			{name: "maker", nl: "car maker", plural: "car makers", attrs: []attrSpec{
				text("maker_name", "maker name", poolWord), text("country", "country", poolCountry),
				text("founded", "founding year", poolYear)}},
			{name: "model", nl: "model", plural: "models", parents: []int{0}, attrs: []attrSpec{
				text("model_name", "model name", poolWord), text("body_style", "body style", poolWord),
				text("horsepower", "horsepower", poolBig), text("mpg", "fuel economy", poolSmall),
				text("price", "price", poolMoney)}},
		},
	},
	{
		name:  "hospital",
		words: []string{"cardiology", "neurology", "oncology", "pediatrics", "radiology", "surgery", "dermatology", "urology"},
		entities: []entitySpec{
			{name: "ward", nl: "ward", plural: "wards", attrs: []attrSpec{
				text("ward_name", "ward name", poolWord), text("beds", "bed count", poolSmall),
				text("floor", "floor", poolRate)}},
			{name: "doctor", nl: "doctor", plural: "doctors", parents: []int{0}, attrs: []attrSpec{
				text("doctor_name", "doctor name", poolPerson), text("specialty", "specialty", poolWord),
				text("experience", "years of experience", poolSmall), text("salary", "salary", poolMoney)}},
			{name: "patient", nl: "patient", plural: "patients", parents: []int{0, 1}, attrs: []attrSpec{
				text("patient_name", "patient name", poolPerson), text("age", "age", poolSmall),
				text("stay_days", "length of stay", poolSmall)}},
		},
	},
	{
		name:  "library",
		words: []string{"novel", "poetry", "biography", "essay", "thriller", "romance", "fantasy", "satire"},
		entities: []entitySpec{
			{name: "author", nl: "author", plural: "authors", attrs: []attrSpec{
				text("author_name", "author name", poolPerson), text("nationality", "nationality", poolCountry),
				text("birth_year", "birth year", poolYear)}},
			{name: "book", nl: "book", plural: "books", parents: []int{0}, attrs: []attrSpec{
				text("title", "title", poolWord), text("genre", "genre", poolWord),
				text("pages", "page count", poolBig), text("published", "publication year", poolYear)}},
			{name: "branch", nl: "library branch", plural: "library branches", attrs: []attrSpec{
				text("branch_name", "branch name", poolCity), text("city", "city", poolCity),
				text("open_year", "opening year", poolYear)}},
			{name: "loan", nl: "loan", plural: "loans", parents: []int{1, 2}, attrs: []attrSpec{
				text("loan_days", "loan duration", poolSmall), text("fine", "fine", poolMoney)}},
		},
	},
	{
		name:  "sport",
		words: []string{"striker", "keeper", "defender", "winger", "captain", "coach", "rookie", "veteran"},
		entities: []entitySpec{
			{name: "club", nl: "club", plural: "clubs", attrs: []attrSpec{
				text("club_name", "club name", poolWord), text("city", "city", poolCity),
				text("founded", "founding year", poolYear), text("titles", "title count", poolSmall)}},
			{name: "player", nl: "player", plural: "players", parents: []int{0}, attrs: []attrSpec{
				text("player_name", "player name", poolPerson), text("position", "position", poolWord),
				text("age", "age", poolSmall), text("goals", "goal count", poolSmall),
				text("wage", "wage", poolMoney)}},
			{name: "match_game", nl: "match", plural: "matches", parents: []int{0}, attrs: []attrSpec{
				text("stadium", "stadium", poolCity), text("spectators", "spectator count", poolBig),
				text("season", "season", poolYear)}},
		},
	},
	{
		name:  "restaurant",
		words: []string{"sushi", "pasta", "burger", "curry", "taco", "ramen", "salad", "barbecue"},
		entities: []entitySpec{
			{name: "restaurant", nl: "restaurant", plural: "restaurants", attrs: []attrSpec{
				text("rest_name", "restaurant name", poolWord), text("cuisine", "cuisine", poolWord),
				text("city", "city", poolCity), text("rating", "rating", poolRate)}},
			{name: "dish", nl: "dish", plural: "dishes", parents: []int{0}, attrs: []attrSpec{
				text("dish_name", "dish name", poolWord), text("price", "price", poolMoney),
				text("calories", "calorie count", poolBig)}},
			{name: "chef", nl: "chef", plural: "chefs", parents: []int{0}, attrs: []attrSpec{
				text("chef_name", "chef name", poolPerson), text("experience", "years of experience", poolSmall)}},
		},
	},
	{
		name:  "movie",
		words: []string{"drama", "comedy", "horror", "action", "documentary", "animation", "western", "musical"},
		entities: []entitySpec{
			{name: "director", nl: "director", plural: "directors", attrs: []attrSpec{
				text("director_name", "director name", poolPerson), text("nationality", "nationality", poolCountry),
				text("debut_year", "debut year", poolYear)}},
			{name: "movie", nl: "movie", plural: "movies", parents: []int{0}, attrs: []attrSpec{
				text("movie_title", "movie title", poolWord), text("genre", "genre", poolWord),
				text("box_office", "box office", poolMoney), text("release_year", "release year", poolYear),
				text("score", "review score", poolRate)}},
			{name: "cinema", nl: "cinema", plural: "cinemas", attrs: []attrSpec{
				text("cinema_name", "cinema name", poolCity), text("seats", "seat count", poolBig)}},
			{name: "screening", nl: "screening", plural: "screenings", parents: []int{1, 2}, attrs: []attrSpec{
				text("tickets_sold", "tickets sold", poolBig), text("show_year", "show year", poolYear)}},
		},
	},
	{
		name:  "hotel",
		words: []string{"suite", "single", "double", "penthouse", "cabin", "loft", "studio", "villa"},
		entities: []entitySpec{
			{name: "hotel", nl: "hotel", plural: "hotels", attrs: []attrSpec{
				text("hotel_name", "hotel name", poolWord), text("city", "city", poolCity),
				text("stars", "star rating", poolRate), text("rooms", "room count", poolBig)}},
			{name: "guest", nl: "guest", plural: "guests", attrs: []attrSpec{
				text("guest_name", "guest name", poolPerson), text("home_country", "home country", poolCountry),
				text("age", "age", poolSmall)}},
			{name: "booking", nl: "booking", plural: "bookings", parents: []int{0, 1}, attrs: []attrSpec{
				text("nights", "night count", poolSmall), text("amount", "amount paid", poolMoney),
				text("book_year", "booking year", poolYear)}},
		},
	},
	{
		name:  "bank",
		words: []string{"savings", "checking", "fixed", "premium", "student", "joint", "business", "offshore"},
		entities: []entitySpec{
			{name: "branch", nl: "bank branch", plural: "bank branches", attrs: []attrSpec{
				text("branch_name", "branch name", poolCity), text("city", "city", poolCity),
				text("assets", "asset value", poolMoney)}},
			{name: "customer", nl: "customer", plural: "customers", parents: []int{0}, attrs: []attrSpec{
				text("cust_name", "customer name", poolPerson), text("acc_type", "account type", poolWord),
				text("balance", "balance", poolMoney), text("credit_score", "credit score", poolBig)}},
			{name: "loan", nl: "loan", plural: "loans", parents: []int{0, 1}, attrs: []attrSpec{
				text("loan_type", "loan type", poolWord), text("amount", "loan amount", poolMoney)}},
		},
	},
	{
		name:  "orchestra",
		words: []string{"violin", "cello", "flute", "oboe", "trumpet", "harp", "piano", "timpani"},
		entities: []entitySpec{
			{name: "conductor", nl: "conductor", plural: "conductors", attrs: []attrSpec{
				text("conductor_name", "conductor name", poolPerson), text("nationality", "nationality", poolCountry),
				text("year_started", "starting year", poolYear)}},
			{name: "orchestra", nl: "orchestra", plural: "orchestras", parents: []int{0}, attrs: []attrSpec{
				text("orch_name", "orchestra name", poolWord), text("founded", "founding year", poolYear),
				text("players", "player count", poolSmall)}},
			{name: "performance", nl: "performance", plural: "performances", parents: []int{1}, attrs: []attrSpec{
				text("hall", "concert hall", poolCity), text("attendance", "attendance", poolBig),
				text("perf_year", "performance year", poolYear)}},
		},
	},
	{
		name:  "museum",
		words: []string{"painting", "sculpture", "fresco", "ceramic", "print", "tapestry", "mosaic", "sketch"},
		entities: []entitySpec{
			{name: "museum", nl: "museum", plural: "museums", attrs: []attrSpec{
				text("museum_name", "museum name", poolCity), text("city", "city", poolCity),
				text("open_year", "opening year", poolYear), text("visitors", "visitor count", poolBig)}},
			{name: "artist", nl: "artist", plural: "artists", attrs: []attrSpec{
				text("artist_name", "artist name", poolPerson), text("nationality", "nationality", poolCountry),
				text("birth_year", "birth year", poolYear)}},
			{name: "artwork", nl: "artwork", plural: "artworks", parents: []int{0, 1}, attrs: []attrSpec{
				text("art_title", "artwork title", poolWord), text("medium", "medium", poolWord),
				text("value", "appraised value", poolMoney)}},
		},
	},
	{
		name:  "farm",
		words: []string{"wheat", "corn", "barley", "soy", "apple", "grape", "rice", "cotton"},
		entities: []entitySpec{
			{name: "farm", nl: "farm", plural: "farms", attrs: []attrSpec{
				text("farm_name", "farm name", poolWord), text("region", "region", poolCity),
				text("hectares", "hectare count", poolBig)}},
			{name: "crop", nl: "crop", plural: "crops", parents: []int{0}, attrs: []attrSpec{
				text("crop_name", "crop name", poolWord), text("yield_tons", "yield in tons", poolBig),
				text("crop_price", "price", poolMoney)}},
			{name: "worker", nl: "farm worker", plural: "farm workers", parents: []int{0}, attrs: []attrSpec{
				text("worker_name", "worker name", poolPerson), text("age", "age", poolSmall),
				text("wage", "wage", poolMoney)}},
		},
	},
	{
		name:  "railway",
		words: []string{"express", "local", "freight", "sleeper", "shuttle", "intercity", "metro", "steam"},
		entities: []entitySpec{
			{name: "station", nl: "station", plural: "stations", attrs: []attrSpec{
				text("station_name", "station name", poolCity), text("city", "city", poolCity),
				text("platforms", "platform count", poolSmall), text("open_year", "opening year", poolYear)}},
			{name: "train", nl: "train", plural: "trains", parents: []int{0}, attrs: []attrSpec{
				text("train_name", "train name", poolWord), text("service", "service type", poolWord),
				text("speed", "top speed", poolBig), text("carriages", "carriage count", poolSmall)}},
		},
	},
	{
		name:  "election",
		words: []string{"governor", "senator", "mayor", "council", "treasurer", "sheriff", "judge", "delegate"},
		entities: []entitySpec{
			{name: "party", nl: "party", plural: "parties", attrs: []attrSpec{
				text("party_name", "party name", poolWord), text("founded", "founding year", poolYear),
				text("seats", "seat count", poolSmall)}},
			{name: "candidate", nl: "candidate", plural: "candidates", parents: []int{0}, attrs: []attrSpec{
				text("cand_name", "candidate name", poolPerson), text("office", "office sought", poolWord),
				text("age", "age", poolSmall), text("votes", "vote count", poolBig)}},
		},
	},
	{
		name:  "airline_crew",
		words: []string{"captain", "first_officer", "purser", "attendant", "engineer", "dispatcher", "navigator", "trainee"},
		entities: []entitySpec{
			{name: "base", nl: "crew base", plural: "crew bases", attrs: []attrSpec{
				text("base_city", "base city", poolCity), text("country", "country", poolCountry),
				text("opened", "opening year", poolYear)}},
			{name: "crew_member", nl: "crew member", plural: "crew members", parents: []int{0}, attrs: []attrSpec{
				text("member_name", "member name", poolPerson), text("role", "role", poolWord),
				text("flight_hours", "flight hours", poolBig), text("salary", "salary", poolMoney)}},
		},
	},
	{
		name:  "gym",
		words: []string{"yoga", "spin", "pilates", "boxing", "crossfit", "zumba", "rowing", "stretch"},
		entities: []entitySpec{
			{name: "gym", nl: "gym", plural: "gyms", attrs: []attrSpec{
				text("gym_name", "gym name", poolWord), text("city", "city", poolCity),
				text("members", "member count", poolBig)}},
			{name: "trainer", nl: "trainer", plural: "trainers", parents: []int{0}, attrs: []attrSpec{
				text("trainer_name", "trainer name", poolPerson), text("specialty", "specialty", poolWord),
				text("age", "age", poolSmall), text("rate", "hourly rate", poolMoney)}},
			{name: "class_session", nl: "class", plural: "classes", parents: []int{0, 1}, attrs: []attrSpec{
				text("class_type", "class type", poolWord), text("capacity", "capacity", poolSmall)}},
		},
	},
	{
		name:  "newspaper",
		words: []string{"politics", "sports", "culture", "economy", "science", "opinion", "travel", "weather"},
		entities: []entitySpec{
			{name: "newspaper", nl: "newspaper", plural: "newspapers", attrs: []attrSpec{
				text("paper_name", "newspaper name", poolWord), text("city", "city", poolCity),
				text("founded", "founding year", poolYear), text("circulation", "circulation", poolBig)}},
			{name: "journalist", nl: "journalist", plural: "journalists", parents: []int{0}, attrs: []attrSpec{
				text("journalist_name", "journalist name", poolPerson), text("beat", "beat", poolWord),
				text("years_active", "years active", poolSmall)}},
			{name: "article", nl: "article", plural: "articles", parents: []int{1}, attrs: []attrSpec{
				text("headline", "headline", poolWord), text("section", "section", poolWord),
				text("word_count", "word count", poolBig)}},
		},
	},
	{
		name:  "brewery",
		words: []string{"lager", "stout", "porter", "pilsner", "ale", "wheat", "sour", "amber"},
		entities: []entitySpec{
			{name: "brewery", nl: "brewery", plural: "breweries", attrs: []attrSpec{
				text("brewery_name", "brewery name", poolWord), text("city", "city", poolCity),
				text("founded", "founding year", poolYear)}},
			{name: "beer", nl: "beer", plural: "beers", parents: []int{0}, attrs: []attrSpec{
				text("beer_name", "beer name", poolWord), text("style", "style", poolWord),
				text("abv", "alcohol content", poolRate), text("ibu", "bitterness", poolSmall)}},
		},
	},
	{
		name:  "university",
		words: []string{"linguistics", "astronomy", "economics", "philosophy", "genetics", "robotics", "statistics", "geology"},
		entities: []entitySpec{
			{name: "faculty", nl: "faculty", plural: "faculties", attrs: []attrSpec{
				text("faculty_name", "faculty name", poolWord), text("building", "building", poolCity),
				text("budget", "budget", poolMoney)}},
			{name: "professor", nl: "professor", plural: "professors", parents: []int{0}, attrs: []attrSpec{
				text("prof_name", "professor name", poolPerson), text("field", "field", poolWord),
				text("age", "age", poolSmall), text("citations", "citation count", poolBig)}},
			{name: "lab", nl: "laboratory", plural: "laboratories", parents: []int{0, 1}, attrs: []attrSpec{
				text("lab_name", "lab name", poolWord), text("grant", "grant amount", poolMoney)}},
		},
	},
	{
		name:  "realestate",
		words: []string{"apartment", "townhouse", "bungalow", "duplex", "condo", "cottage", "mansion", "loft"},
		entities: []entitySpec{
			{name: "agency", nl: "agency", plural: "agencies", attrs: []attrSpec{
				text("agency_name", "agency name", poolWord), text("city", "city", poolCity),
				text("founded", "founding year", poolYear)}},
			{name: "agent", nl: "agent", plural: "agents", parents: []int{0}, attrs: []attrSpec{
				text("agent_name", "agent name", poolPerson), text("sales", "sales count", poolSmall),
				text("commission", "commission", poolMoney)}},
			{name: "property", nl: "property", plural: "properties", parents: []int{0, 1}, attrs: []attrSpec{
				text("property_type", "property type", poolWord), text("asking_price", "asking price", poolMoney),
				text("bedrooms", "bedroom count", poolRate)}},
		},
	},
	{
		name:  "podcast",
		words: []string{"interview", "truecrime", "comedy", "tech", "history", "finance", "health", "fiction"},
		entities: []entitySpec{
			{name: "network", nl: "podcast network", plural: "podcast networks", attrs: []attrSpec{
				text("network_name", "network name", poolWord), text("country", "country", poolCountry),
				text("shows", "show count", poolSmall)}},
			{name: "podcast", nl: "podcast", plural: "podcasts", parents: []int{0}, attrs: []attrSpec{
				text("podcast_title", "podcast title", poolWord), text("genre", "genre", poolWord),
				text("episodes", "episode count", poolBig), text("listeners", "listener count", poolBig)}},
			{name: "host", nl: "host", plural: "hosts", parents: []int{1}, attrs: []attrSpec{
				text("host_name", "host name", poolPerson), text("age", "age", poolSmall)}},
		},
	},
	{
		name:  "logistics",
		words: []string{"parcel", "pallet", "freight", "document", "fragile", "perishable", "oversize", "express"},
		entities: []entitySpec{
			{name: "warehouse", nl: "warehouse", plural: "warehouses", attrs: []attrSpec{
				text("warehouse_city", "warehouse city", poolCity), text("capacity", "capacity", poolBig),
				text("docks", "dock count", poolSmall)}},
			{name: "driver", nl: "driver", plural: "drivers", parents: []int{0}, attrs: []attrSpec{
				text("driver_name", "driver name", poolPerson), text("license_year", "license year", poolYear),
				text("deliveries", "delivery count", poolBig)}},
			{name: "shipment", nl: "shipment", plural: "shipments", parents: []int{0, 1}, attrs: []attrSpec{
				text("cargo_type", "cargo type", poolWord), text("weight", "weight", poolBig),
				text("fee", "fee", poolMoney)}},
		},
	},
	// ---- dev-reserved domains below (unseen databases at training time) ----
	{
		name:  "tv",
		words: []string{"news", "cartoon", "sitcom", "reality", "quiz", "talk", "crime", "nature"},
		entities: []entitySpec{
			{name: "tv_channel", nl: "TV channel", plural: "TV channels", attrs: []attrSpec{
				text("series_name", "series name", poolWord), text("country", "country", poolCountry),
				text("language", "language", poolCountry), text("hight_definition_TV", "HD flag", poolRate)}},
			{name: "tv_series", nl: "TV series", plural: "TV series", parents: []int{0}, attrs: []attrSpec{
				text("episode", "episode", poolWord), text("rating", "rating", poolRate),
				text("share", "share", poolSmall), text("weekly_rank", "weekly rank", poolSmall)}},
			{name: "cartoon", nl: "cartoon", plural: "cartoons", parents: []int{0}, attrs: []attrSpec{
				text("cartoon_title", "cartoon title", poolWord), text("written_by", "writer", poolPerson),
				text("directed_by", "director", poolPerson), text("production_code", "production code", poolBig)}},
		},
	},
	{
		name:  "wine",
		words: []string{"merlot", "pinot", "syrah", "riesling", "malbec", "zinfandel", "chardonnay", "rose"},
		entities: []entitySpec{
			{name: "winery", nl: "winery", plural: "wineries", attrs: []attrSpec{
				text("winery_name", "winery name", poolWord), text("region", "region", poolCity),
				text("founded", "founding year", poolYear)}},
			{name: "wine", nl: "wine", plural: "wines", parents: []int{0}, attrs: []attrSpec{
				text("wine_name", "wine name", poolWord), text("grape", "grape variety", poolWord),
				text("vintage", "vintage year", poolYear), text("bottle_price", "bottle price", poolMoney),
				text("wine_score", "score", poolRate)}},
		},
	},
	{
		name:  "climbing",
		words: []string{"granite", "limestone", "alpine", "boulder", "crack", "slab", "ridge", "icefall"},
		entities: []entitySpec{
			{name: "mountain", nl: "mountain", plural: "mountains", attrs: []attrSpec{
				text("mountain_name", "mountain name", poolCity), text("height", "height", poolBig),
				text("country", "country", poolCountry), text("prominence", "prominence", poolBig)}},
			{name: "climber", nl: "climber", plural: "climbers", parents: []int{0}, attrs: []attrSpec{
				text("climber_name", "climber name", poolPerson), text("country", "country", poolCountry),
				text("points", "point total", poolBig)}},
		},
	},
	{
		name:  "theme_park",
		words: []string{"coaster", "carousel", "ferris", "log_flume", "teacup", "ghost_house", "drop_tower", "bumper"},
		entities: []entitySpec{
			{name: "park", nl: "theme park", plural: "theme parks", attrs: []attrSpec{
				text("park_name", "park name", poolWord), text("city", "city", poolCity),
				text("open_year", "opening year", poolYear), text("area", "area", poolBig)}},
			{name: "ride", nl: "ride", plural: "rides", parents: []int{0}, attrs: []attrSpec{
				text("ride_name", "ride name", poolWord), text("ride_type", "ride type", poolWord),
				text("max_speed", "maximum speed", poolBig), text("opened", "opening year", poolYear)}},
			{name: "visitor", nl: "visitor", plural: "visitors", parents: []int{0}, attrs: []attrSpec{
				text("visitor_name", "visitor name", poolPerson), text("age", "age", poolSmall),
				text("spent", "money spent", poolMoney)}},
		},
	},
	{
		name:  "shipping",
		words: []string{"container", "tanker", "bulk", "reefer", "ro_ro", "feeder", "barge", "ferry"},
		entities: []entitySpec{
			{name: "port", nl: "port", plural: "ports", attrs: []attrSpec{
				text("port_name", "port name", poolCity), text("country", "country", poolCountry),
				text("berths", "berth count", poolSmall)}},
			{name: "ship", nl: "ship", plural: "ships", parents: []int{0}, attrs: []attrSpec{
				text("ship_name", "ship name", poolWord), text("ship_type", "ship type", poolWord),
				text("tonnage", "tonnage", poolBig), text("built_year", "build year", poolYear)}},
			{name: "voyage", nl: "voyage", plural: "voyages", parents: []int{1}, attrs: []attrSpec{
				text("destination", "destination", poolCity), text("cargo_tons", "cargo tons", poolBig),
				text("voyage_year", "voyage year", poolYear)}},
		},
	},
	{
		name:  "esports",
		words: []string{"strategy", "shooter", "moba", "fighting", "racing", "puzzle", "card", "sandbox"},
		entities: []entitySpec{
			{name: "team", nl: "team", plural: "teams", attrs: []attrSpec{
				text("team_name", "team name", poolWord), text("region", "region", poolCountry),
				text("founded", "founding year", poolYear), text("earnings", "earnings", poolMoney)}},
			{name: "gamer", nl: "gamer", plural: "gamers", parents: []int{0}, attrs: []attrSpec{
				text("gamer_tag", "gamer tag", poolPerson), text("main_game", "main game", poolWord),
				text("age", "age", poolSmall), text("rating", "rating", poolRate)}},
			{name: "tournament", nl: "tournament", plural: "tournaments", parents: []int{0}, attrs: []attrSpec{
				text("tour_name", "tournament name", poolWord), text("prize_pool", "prize pool", poolMoney),
				text("tour_year", "tournament year", poolYear)}},
		},
	},
}

// trainDomainCount is how many leading entries of domains seed the training
// split; the rest are dev-only.
const trainDomainCount = 26

// personNames, cityNames, countryNames are shared value pools.
var personNames = []string{
	"Avery Brooks", "Jordan Lee", "Casey Smith", "Riley Chen", "Morgan Davis",
	"Quinn Taylor", "Harper Jones", "Rowan White", "Sage Miller", "Emerson Clark",
	"Todd Casey", "Dana Flores", "Jamie Patel", "Alex Novak", "Sam Rivera",
	"Robin Walsh", "Drew Kim", "Blake Moore", "Skyler Adams", "Reese Turner",
	"Parker Young", "Finley Scott", "Hayden Brown", "Peyton Hall", "Cameron Reed",
}

var cityNames = []string{
	"Springfield", "Riverton", "Lakeside", "Fairview", "Georgetown", "Madison",
	"Clinton", "Salem", "Bristol", "Ashland", "Burlington", "Manchester",
	"Oxford", "Clayton", "Dayton", "Franklin", "Greenville", "Hudson",
	"Kingston", "Milton",
}

var countryNames = []string{
	"USA", "UK", "France", "Germany", "Japan", "Brazil", "Canada", "Italy",
	"Spain", "Australia", "Korea", "Netherlands", "Sweden", "Mexico", "India",
}

// synonymMap drives the Spider-SYN variant: NL schema mentions are replaced
// by handpicked synonyms unseen in the training NL distribution.
var synonymMap = map[string]string{
	"name": "title", "age": "years of life", "country": "nation",
	"city": "town", "salary": "pay", "price": "cost", "rating": "grade",
	"year": "calendar year", "genre": "style", "count": "number",
	"band": "music group", "singer": "vocalist", "teacher": "instructor",
	"student": "pupil", "employee": "staff member", "company": "firm",
	"doctor": "physician", "patient": "sick person", "book": "volume",
	"author": "writer", "player": "athlete", "club": "squad",
	"movie": "film", "director": "filmmaker", "hotel": "lodge",
	"guest": "visitor", "customer": "client", "wine": "bottle",
	"mountain": "peak", "team": "crew", "ship": "vessel", "train": "locomotive",
	"budget": "funds", "attendance": "turnout", "revenue": "income",
	"height": "elevation", "weight": "mass", "wage": "pay packet",
}
