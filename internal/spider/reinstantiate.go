package spider

import (
	"math/rand"
	"strings"

	"repro/internal/schema"
)

// Reinstantiate returns a database with the same schema as db but resampled
// data: each table's rows are redrawn (with replacement, and with a fresh
// row count) from the original column value pools. Literal values mentioned
// by benchmark queries therefore remain meaningful on the new instance,
// while duplicate structure, tie structure and aggregate values all change —
// exactly the variation the distilled test-suite metric (TS) needs to
// distinguish near-miss queries from gold.
func Reinstantiate(db *schema.Database, seed int64) *schema.Database {
	rng := rand.New(rand.NewSource(seed))
	nd := db.Clone()

	// Collect per-column distinct value pools from the original data.
	pools := map[string][]schema.Value{}
	for _, t := range db.Tables {
		for ci, c := range t.Columns {
			key := strings.ToLower(t.Name) + "." + strings.ToLower(c.Name)
			seen := map[string]bool{}
			for _, r := range t.Rows {
				v := r[ci]
				if v.IsNull() {
					continue
				}
				k := v.String()
				if !seen[k] {
					seen[k] = true
					pools[key] = append(pools[key], v)
				}
			}
		}
	}

	rowCounts := map[string]int{}
	for _, t := range nd.Tables {
		orig := len(t.Rows)
		if orig == 0 {
			continue
		}
		n := orig/2 + rng.Intn(orig+1) // 0.5x .. 1.5x the original size
		if n < 4 {
			n = 4
		}
		rowCounts[strings.ToLower(t.Name)] = n
		t.Rows = nil
		for i := 0; i < n; i++ {
			row := make([]schema.Value, len(t.Columns))
			for ci, c := range t.Columns {
				switch {
				case strings.EqualFold(c.Name, t.PrimaryKey):
					row[ci] = schema.N(float64(i + 1))
				case strings.HasSuffix(strings.ToLower(c.Name), "_id"):
					parent := strings.TrimSuffix(strings.ToLower(c.Name), "_id")
					pn := rowCounts[parent]
					if pn == 0 {
						pn = n
					}
					if rng.Float64() < 0.08 {
						row[ci] = schema.Null()
					} else {
						row[ci] = schema.N(float64(1 + rng.Intn(pn)))
					}
				default:
					pool := pools[strings.ToLower(t.Name)+"."+strings.ToLower(c.Name)]
					if len(pool) == 0 {
						row[ci] = schema.Null()
						continue
					}
					row[ci] = pool[rng.Intn(len(pool))]
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return nd
}
