package router

// Proxy-tier behavior: ring-consistent routing, body sniffing, retry on
// connection errors, tail hedging (win, and 404-hold loss), health-probe
// ejection/readmission, register-on-miss adoption, and the metrics surface.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// echoBackend is a stand-in shard: it answers every path with its identity,
// optionally after a configurable delay (for hedging tests).
type echoBackend struct {
	srv   *httptest.Server
	addr  string
	id    string
	delay atomic.Int64 // nanoseconds
	hits  atomic.Int64
}

func newEcho(t *testing.T, id string) *echoBackend {
	t.Helper()
	b := &echoBackend{id: id}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if got := r.Header.Get(ShardHeader); got != "" {
			t.Errorf("shard header leaked upstream: %q", got)
		}
		if d := time.Duration(b.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"shard": b.id, "path": r.URL.Path})
	}))
	b.addr = strings.TrimPrefix(b.srv.URL, "http://")
	t.Cleanup(b.srv.Close)
	return b
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // tests drive CheckNow deterministically
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// get issues a request through the router front and decodes the echo reply.
func get(t *testing.T, front, path string) (shard string, resp *http.Response) {
	t.Helper()
	r, err := http.Get(front + path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var body struct {
		Shard string `json:"shard"`
	}
	raw, _ := io.ReadAll(r.Body)
	json.Unmarshal(raw, &body)
	return body.Shard, r
}

func TestProxyRoutesByTenant(t *testing.T) {
	a, b := newEcho(t, "a"), newEcho(t, "b")
	byAddr := map[string]string{a.addr: "a", b.addr: "b"}
	rt := newTestRouter(t, Config{Shards: []string{a.addr, b.addr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	ring := rt.tab.Load().ring
	for i := 0; i < 10; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		want := byAddr[ring.Lookup(tenant)]
		for rep := 0; rep < 3; rep++ {
			shard, resp := get(t, front.URL, "/v1/databases/"+tenant)
			if shard != want {
				t.Fatalf("tenant %s went to %s, ring places it on %s", tenant, shard, want)
			}
			if got := resp.Header.Get(ShardHeader); got != ring.Lookup(tenant) {
				t.Errorf("response %s = %q, want target addr %q", ShardHeader, got, ring.Lookup(tenant))
			}
		}
	}
}

func TestProxyBodySniffAgreesWithPath(t *testing.T) {
	a, b := newEcho(t, "a"), newEcho(t, "b")
	rt := newTestRouter(t, Config{Shards: []string{a.addr, b.addr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 8; i++ {
		tenant := fmt.Sprintf("sniff-%d", i)
		pathShard, _ := get(t, front.URL, "/v1/databases/"+tenant)
		body, _ := json.Marshal(map[string]string{"database": tenant, "question": "hi"})
		resp, err := http.Post(front.URL+"/v1/translate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var echo struct {
			Shard string `json:"shard"`
		}
		json.NewDecoder(resp.Body).Decode(&echo)
		resp.Body.Close()
		if echo.Shard != pathShard {
			t.Fatalf("tenant %s: body-sniffed POST went to %s, path-keyed GET to %s", tenant, echo.Shard, pathShard)
		}
	}
}

// deadAddr reserves an address and closes it, yielding connection-refused.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// tenantOn finds a key the ring places on the wanted primary.
func tenantOn(t *testing.T, ring *Ring, primary string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("pick-%d", i)
		if ring.Lookup(k) == primary {
			return k
		}
	}
	t.Fatal("no key maps to the wanted shard")
	return ""
}

func TestRetryOnConnectionError(t *testing.T) {
	alive := newEcho(t, "alive")
	dead := deadAddr(t)
	rt := newTestRouter(t, Config{Shards: []string{alive.addr, dead}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	key := tenantOn(t, rt.tab.Load().ring, dead)
	shard, resp := get(t, front.URL, "/v1/databases/"+key)
	if resp.StatusCode != http.StatusOK || shard != "alive" {
		t.Fatalf("request keyed to the dead shard: status %d from %q, want 200 from alive", resp.StatusCode, shard)
	}
	if got := rt.mRetries.Value(); got < 1 {
		t.Errorf("router_retries_total = %v, want >= 1", got)
	}
}

func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	a, b := newEcho(t, "a"), newEcho(t, "b")
	byAddr := map[string]*echoBackend{a.addr: a, b.addr: b}
	rt := newTestRouter(t, Config{Shards: []string{a.addr, b.addr}, HedgeAfter: 20 * time.Millisecond})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const key = "hedge-me"
	primary, successor := rt.tab.Load().ring.Lookup2(key)
	byAddr[primary].delay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	shard, resp := get(t, front.URL, "/v1/databases/"+key)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK || shard != byAddr[successor].id {
		t.Fatalf("hedged request: status %d from %q, want 200 from successor %q", resp.StatusCode, shard, byAddr[successor].id)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("hedged request took %v, the slow primary's full latency", elapsed)
	}
	if rt.mHedges.Value() < 1 || rt.mHedgeWin.Value() < 1 {
		t.Errorf("hedge counters: fired=%v wins=%v, want both >= 1", rt.mHedges.Value(), rt.mHedgeWin.Value())
	}
}

// TestHedge404WaitsForPrimary: the replica successor answering 404 must not
// preempt a primary that actually hosts the tenant.
func TestHedge404WaitsForPrimary(t *testing.T) {
	const key = "held-tenant"
	var backends []*echoBackend
	mk := func(id string) *echoBackend {
		b := &echoBackend{id: id}
		b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			b.hits.Add(1)
			if d := time.Duration(b.delay.Load()); d > 0 {
				time.Sleep(d)
			}
			if b.delay.Load() == 0 {
				// The fast replica does not host the tenant.
				http.Error(w, "unknown database", http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(map[string]string{"shard": b.id})
		}))
		b.addr = strings.TrimPrefix(b.srv.URL, "http://")
		t.Cleanup(b.srv.Close)
		backends = append(backends, b)
		return b
	}
	a, b := mk("a"), mk("b")
	byAddr := map[string]*echoBackend{a.addr: a, b.addr: b}
	rt := newTestRouter(t, Config{Shards: []string{a.addr, b.addr}, HedgeAfter: 10 * time.Millisecond})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	primary, _ := rt.tab.Load().ring.Lookup2(key)
	byAddr[primary].delay.Store(int64(120 * time.Millisecond))

	shard, resp := get(t, front.URL, "/v1/databases/"+key)
	if resp.StatusCode != http.StatusOK || shard != byAddr[primary].id {
		t.Fatalf("got status %d from %q, want the slow primary's 200 (hedge 404 must be held)", resp.StatusCode, shard)
	}
	if rt.mHedgeLos.Value() < 1 {
		t.Errorf("router_hedge_losses_total = %v, want >= 1", rt.mHedgeLos.Value())
	}
}

func TestEjectionAndReadmission(t *testing.T) {
	alive := newEcho(t, "alive")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flappyAddr := l.Addr().String()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"shard": "flappy"})
	})
	srv := &http.Server{Handler: h}
	go srv.Serve(l)

	rt := newTestRouter(t, Config{Shards: []string{alive.addr, flappyAddr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	ctx := t.Context()

	if got := len(rt.Healthy()); got != 2 {
		t.Fatalf("healthy shards at boot = %d, want 2", got)
	}
	epoch0 := rt.Epoch()

	srv.Close()
	rt.CheckNow(ctx)
	if got := len(rt.Healthy()); got != 2 {
		t.Fatalf("one failed probe ejected the shard (healthy = %d); threshold is %d", got, ejectThreshold)
	}
	// Mid-ejection-window traffic keyed to the down shard still succeeds via
	// retry — the zero-failed-requests guarantee across a shard kill.
	key := tenantOn(t, rt.tab.Load().ring, flappyAddr)
	if shard, resp := get(t, front.URL, "/v1/databases/"+key); resp.StatusCode != http.StatusOK || shard != "alive" {
		t.Fatalf("request during ejection window: status %d from %q", resp.StatusCode, shard)
	}

	rt.CheckNow(ctx)
	if got := rt.Healthy(); len(got) != 1 || got[0] != alive.addr {
		t.Fatalf("after %d failed probes healthy = %v, want [%s]", ejectThreshold, got, alive.addr)
	}
	if rt.Epoch() == epoch0 {
		t.Error("ejection did not bump the table epoch")
	}
	if rt.mEject.Value() != 1 {
		t.Errorf("router_ejections_total = %v, want 1", rt.mEject.Value())
	}
	if st := rt.Status(); st.HealthyShards != 1 {
		t.Errorf("status healthy_shards = %d, want 1", st.HealthyShards)
	}

	// Restart on the same address; one passing probe readmits.
	l2, err := net.Listen("tcp", flappyAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", flappyAddr, err)
	}
	srv2 := &http.Server{Handler: h}
	go srv2.Serve(l2)
	defer srv2.Close()
	rt.CheckNow(ctx)
	if got := len(rt.Healthy()); got != 2 {
		t.Fatalf("healthy after restart = %d, want 2 (readmit after one pass)", got)
	}
	if rt.mReadmit.Value() != 1 {
		t.Errorf("router_readmissions_total = %v, want 1", rt.mReadmit.Value())
	}
	if shard, resp := get(t, front.URL, "/v1/databases/"+key); resp.StatusCode != http.StatusOK || shard != "flappy" {
		t.Fatalf("after readmission: status %d from %q, want flappy again", resp.StatusCode, shard)
	}
}

func TestAdoptOnMiss(t *testing.T) {
	var adopted atomic.Bool
	var adoptPosts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/databases/pets/adopt":
			adoptPosts.Add(1)
			adopted.Store(true)
			json.NewEncoder(w).Encode(map[string]string{"state": "ready"})
		case r.URL.Path == "/v1/databases/pets":
			if !adopted.Load() {
				http.Error(w, "unknown database", http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(map[string]string{"shard": "s0", "state": "ready"})
		default:
			http.Error(w, "unknown database", http.StatusNotFound)
		}
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	rt := newTestRouter(t, Config{Shards: []string{addr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	shard, resp := get(t, front.URL, "/v1/databases/pets")
	if resp.StatusCode != http.StatusOK || shard != "s0" {
		t.Fatalf("miss was not healed by adopt: status %d from %q", resp.StatusCode, shard)
	}
	if got := adoptPosts.Load(); got != 1 {
		t.Errorf("adopt POSTs = %d, want 1", got)
	}
	if got := rt.mAdopt.Value(); got != 1 {
		t.Errorf("router_adoptions_total = %v, want 1", got)
	}

	// A tenant with no persisted state anywhere stays a plain 404.
	if _, resp := get(t, front.URL, "/v1/databases/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant = %d, want 404", resp.StatusCode)
	}
}

func TestStickyShardHeader(t *testing.T) {
	a, b := newEcho(t, "a"), newEcho(t, "b")
	byID := map[string]*echoBackend{"a": a, "b": b}
	rt := newTestRouter(t, Config{Shards: []string{a.addr, b.addr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for _, want := range []string{"a", "b"} {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/jobs/some-id", nil)
		req.Header.Set(ShardHeader, byID[want].addr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var echo struct {
			Shard string `json:"shard"`
		}
		json.NewDecoder(resp.Body).Decode(&echo)
		resp.Body.Close()
		if echo.Shard != want {
			t.Fatalf("sticky request for shard %s answered by %s", want, echo.Shard)
		}
	}
}

func TestNoHealthyShards(t *testing.T) {
	dead := deadAddr(t)
	rt := newTestRouter(t, Config{Shards: []string{dead}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	ctx := t.Context()
	rt.CheckNow(ctx)
	rt.CheckNow(ctx)
	if got := len(rt.Healthy()); got != 0 {
		t.Fatalf("healthy = %d, want 0", got)
	}
	for _, path := range []string{"/healthz", "/v1/databases/x"} {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d with an empty table, want 503", path, resp.StatusCode)
		}
	}
}

func TestAdaptiveHedgeDelayTracksP95(t *testing.T) {
	a := newEcho(t, "a")
	rt := newTestRouter(t, Config{Shards: []string{a.addr}}) // HedgeAfter 0 = adaptive
	if d, ok := rt.hedgeDelay(); !ok || d != coldHedgeDelay {
		t.Fatalf("cold hedge delay = %v enabled=%v, want %v", d, ok, coldHedgeDelay)
	}
	for i := 0; i < 2*hedgeMinSamples; i++ {
		rt.latAll.Observe(0.010)
	}
	rt.updateHedgeDelay()
	d, ok := rt.hedgeDelay()
	if !ok || d < hedgeFloor || d > 40*time.Millisecond {
		t.Fatalf("adaptive hedge delay = %v enabled=%v, want near the 10ms p95", d, ok)
	}
}

func TestRouterMetricsAndStatusEndpoints(t *testing.T) {
	a := newEcho(t, "a")
	rt := newTestRouter(t, Config{Shards: []string{a.addr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const n = 5
	for i := 0; i < n; i++ {
		get(t, front.URL, "/v1/databases/metric-tenant")
	}
	resp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples, err := metrics.ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if got := metrics.SumSamples(samples, "http_requests_total"); got < n {
		t.Errorf("http_requests_total sum = %v, want >= %d", got, n)
	}
	if got := metrics.SumSamples(samples, "router_requests_total"); got < n {
		t.Errorf("router_requests_total = %v, want >= %d", got, n)
	}

	var st Status
	r2, err := http.Get(front.URL + "/v1/router")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.HealthyShards != 1 || len(st.Shards) != 1 || !st.Shards[0].Healthy {
		t.Errorf("status = %+v, want one healthy shard", st)
	}
	if st.Shards[0].Placement < 0.999 {
		t.Errorf("single shard placement = %v, want 1.0", st.Shards[0].Placement)
	}
}
