package router

import (
	"fmt"
	"math"
	"testing"
)

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 19081+i)
	}
	return out
}

func tenantNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-db-%d", i)
	}
	return out
}

// TestRingBalance is the ISSUE-mandated distribution property: with 4
// shards at >=128 vnodes, the tenant key distribution stays within 15% of
// fair share.
func TestRingBalance(t *testing.T) {
	for _, vnodes := range []int{128, DefaultVNodes, 256} {
		t.Run(fmt.Sprintf("vnodes=%d", vnodes), func(t *testing.T) {
			shards := shardNames(4)
			r := BuildRing(shards, vnodes)
			counts := make(map[string]int, len(shards))
			keys := tenantNames(20000)
			for _, k := range keys {
				counts[r.Lookup(k)]++
			}
			fair := float64(len(keys)) / float64(len(shards))
			for _, s := range shards {
				dev := math.Abs(float64(counts[s])-fair) / fair
				if dev > 0.15 {
					t.Errorf("shard %s holds %d keys (fair %.0f, deviation %.1f%% > 15%%)",
						s, counts[s], fair, dev*100)
				}
			}
		})
	}
}

// TestRingMinimalMovementRemove: removing one shard relocates only the keys
// it owned — every other key keeps its placement — and the displaced share
// is about 1/N.
func TestRingMinimalMovementRemove(t *testing.T) {
	shards := shardNames(4)
	before := BuildRing(shards, 160)
	after := BuildRing(shards[:3], 160) // drop the last shard
	removed := shards[3]

	keys := tenantNames(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Lookup(k), after.Lookup(k)
		if was == removed {
			moved++
			continue // these must move somewhere; anywhere is legal
		}
		if was != is {
			t.Fatalf("key %q moved %s -> %s although its shard was not removed", k, was, is)
		}
	}
	share := float64(moved) / float64(len(keys))
	if share < 0.25*0.85 || share > 0.25*1.15 {
		t.Errorf("removal displaced %.1f%% of keys; want ~25%% (1/N)", share*100)
	}
}

// TestRingMinimalMovementAdd: adding a shard pulls about 1/(N+1) of the
// keys onto the newcomer and moves nothing between existing shards.
func TestRingMinimalMovementAdd(t *testing.T) {
	shards := shardNames(5)
	before := BuildRing(shards[:4], 160)
	after := BuildRing(shards, 160)
	added := shards[4]

	keys := tenantNames(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Lookup(k), after.Lookup(k)
		if was == is {
			continue
		}
		if is != added {
			t.Fatalf("key %q moved %s -> %s; only moves onto the new shard are minimal", k, was, is)
		}
		moved++
	}
	share := float64(moved) / float64(len(keys))
	if share < 0.20*0.85 || share > 0.20*1.15 {
		t.Errorf("addition displaced %.1f%% of keys; want ~20%% (1/(N+1))", share*100)
	}
}

// TestRingOrderIndependence: placement derives from shard names, not the
// order they were configured in — two routers listing the same shard set
// in different order must agree on every tenant's home.
func TestRingOrderIndependence(t *testing.T) {
	shards := shardNames(4)
	reversed := []string{shards[3], shards[2], shards[1], shards[0]}
	a := BuildRing(shards, 160)
	b := BuildRing(reversed, 160)
	for _, k := range tenantNames(2000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q: placement depends on shard order (%s vs %s)", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingLookup2 checks the replica-successor contract: the successor is
// always a different shard than the primary (on multi-shard rings), and
// the primary agrees with Lookup.
func TestRingLookup2(t *testing.T) {
	r := BuildRing(shardNames(4), 160)
	seen := make(map[string]bool)
	for _, k := range tenantNames(5000) {
		p, s := r.Lookup2(k)
		if p != r.Lookup(k) {
			t.Fatalf("key %q: Lookup2 primary %s != Lookup %s", k, p, r.Lookup(k))
		}
		if s == "" || s == p {
			t.Fatalf("key %q: bad successor %q for primary %q", k, s, p)
		}
		seen[p+"|"+s] = true
	}
	// Successor choice should vary across keys, not be a fixed pairing.
	if len(seen) < 4 {
		t.Errorf("only %d distinct (primary, successor) pairs; successor not ring-derived?", len(seen))
	}

	single := BuildRing(shardNames(1), 160)
	if p, s := single.Lookup2("x"); p == "" || s != "" {
		t.Errorf("single-shard ring: got (%q, %q), want (shard, \"\")", p, s)
	}
}

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil, 160)
	if got := r.Lookup("x"); got != "" {
		t.Errorf("empty ring Lookup = %q, want \"\"", got)
	}
	if p, s := r.Lookup2("x"); p != "" || s != "" {
		t.Errorf("empty ring Lookup2 = (%q, %q), want empty", p, s)
	}
}

// TestRingLookupZeroAlloc is the lock-free hot-path contract from the
// acceptance criteria, enforced in-test so it fails fast (the benchdiff
// gate enforces it again in CI from BENCH_router.json).
func TestRingLookupZeroAlloc(t *testing.T) {
	r := BuildRing(shardNames(4), 160)
	keys := tenantNames(64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Lookup(keys[i&63])
		_, _ = r.Lookup2(keys[(i+1)&63])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Lookup/Lookup2 allocate %.1f per op; want 0", allocs)
	}
}

func TestRingPlacementSums(t *testing.T) {
	r := BuildRing(shardNames(4), 160)
	sum := 0.0
	for _, share := range r.Placement() {
		sum += share
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("placement shares sum to %f, want 1.0", sum)
	}
}

var sinkShard string

func BenchmarkRingLookup(b *testing.B) {
	r := BuildRing(shardNames(4), 160)
	keys := tenantNames(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkShard = r.Lookup(keys[i&255])
	}
}

func BenchmarkRingBuild(b *testing.B) {
	shards := shardNames(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildRing(shards, 160)
	}
}
