package router

// Cross-process trace propagation through the proxy tier: one trace ID from
// client traceparent through retries, hedges and adopt-on-miss; attempt
// spans parent the shard side; /v1/traces/{id} merges shard span trees.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// captureBackend records the traceparent of every request it serves and can
// impersonate a shard's /v1/traces/{id} endpoint for the merge test.
type captureBackend struct {
	srv  *httptest.Server
	addr string
	id   string

	mu      sync.Mutex
	parents []trace.SpanContext // decoded traceparent per request, zero if absent
	delayMu sync.Mutex
	delay   time.Duration
}

func newCapture(t *testing.T, id string) *captureBackend {
	t.Helper()
	b := &captureBackend{id: id}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sc, _ := trace.Extract(r.Header)
		b.mu.Lock()
		b.parents = append(b.parents, sc)
		b.mu.Unlock()
		// A traced shard stamps the trace ID on its response; mimic that so
		// the router's dedup of the doubled header is observable.
		if sc.Sampled {
			w.Header().Set(trace.IDHeader, sc.TraceID.String())
		}
		b.delayMu.Lock()
		d := b.delay
		b.delayMu.Unlock()
		if d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		json.NewEncoder(w).Encode(map[string]string{"shard": b.id})
	}))
	b.addr = strings.TrimPrefix(b.srv.URL, "http://")
	t.Cleanup(b.srv.Close)
	return b
}

func (b *captureBackend) setDelay(d time.Duration) {
	b.delayMu.Lock()
	b.delay = d
	b.delayMu.Unlock()
}

func (b *captureBackend) seen() []trace.SpanContext {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]trace.SpanContext(nil), b.parents...)
}

func alwaysTracer(service string) *trace.Tracer {
	return trace.New(trace.Config{Service: service, Sample: 1, Slow: time.Hour})
}

// fetchTrace pulls the merged span tree for id from the router front.
func fetchTrace(t *testing.T, front, id string) trace.TraceJSON {
	t.Helper()
	resp, err := http.Get(front + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/traces/%s = %d: %s", id, resp.StatusCode, raw)
	}
	var tj trace.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	return tj
}

func spansNamed(tj trace.TraceJSON, name string) []trace.SpanJSON {
	var out []trace.SpanJSON
	for _, s := range tj.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestTraceparentPropagation: the client's sampled trace ID survives the
// proxy hop, the shard sees an attempt span (not the client span) as its
// parent, and the router's tree nests proxy.attempt under the proxy root.
func TestTraceparentPropagation(t *testing.T) {
	a, b := newCapture(t, "a"), newCapture(t, "b")
	rt := newTestRouter(t, Config{
		Shards: []string{a.addr, b.addr}, HedgeAfter: -1, Tracer: alwaysTracer("router"),
	})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := trace.NewSpanContext(true)
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/databases/traced-tenant", nil)
	req.Header.Set(trace.TraceparentHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if got := resp.Header.Get(trace.IDHeader); got != client.TraceID.String() {
		t.Fatalf("%s = %q, want the client trace id %q", trace.IDHeader, got, client.TraceID.String())
	}
	// The shard stamps the same ID; the router must drop that copy rather
	// than emit the header twice.
	if n := len(resp.Header.Values(trace.IDHeader)); n != 1 {
		t.Errorf("%s appears %d times, want once", trace.IDHeader, n)
	}
	all := append(a.seen(), b.seen()...)
	if len(all) != 1 {
		t.Fatalf("backends served %d requests, want 1", len(all))
	}
	up := all[0]
	if !up.Valid() || !up.Sampled {
		t.Fatalf("upstream traceparent invalid or unsampled: %+v", up)
	}
	if up.TraceID != client.TraceID {
		t.Errorf("upstream trace id %s, want the client's %s", up.TraceID.String(), client.TraceID.String())
	}
	if up.SpanID == client.SpanID {
		t.Error("upstream parent span is the client span; want the router's attempt span")
	}

	tj := fetchTrace(t, front.URL, client.TraceID.String())
	roots := spansNamed(tj, "proxy")
	attempts := spansNamed(tj, "proxy.attempt")
	if len(roots) != 1 || len(attempts) != 1 {
		t.Fatalf("trace has %d proxy roots and %d attempts, want 1 and 1: %+v", len(roots), len(attempts), tj.Spans)
	}
	if roots[0].ParentID != client.SpanID.String() {
		t.Errorf("root parent = %q, want the client span %q", roots[0].ParentID, client.SpanID.String())
	}
	if attempts[0].ParentID != roots[0].SpanID {
		t.Errorf("attempt parent = %q, want the root span %q", attempts[0].ParentID, roots[0].SpanID)
	}
	if up.SpanID.String() != attempts[0].SpanID {
		t.Errorf("shard saw parent %q, want the attempt span %q", up.SpanID.String(), attempts[0].SpanID)
	}
}

// TestTraceRetryWalk: a transport error burns an attempt span marked error
// and the retry reaches the survivor under the same trace.
func TestTraceRetryWalk(t *testing.T) {
	alive := newCapture(t, "alive")
	dead := deadAddr(t)
	rt := newTestRouter(t, Config{
		Shards: []string{alive.addr, dead}, HedgeAfter: -1, Tracer: alwaysTracer("router"),
	})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	key := tenantOn(t, rt.tab.Load().ring, dead)
	client := trace.NewSpanContext(true)
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/databases/"+key, nil)
	req.Header.Set(trace.TraceparentHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry walk answered %d, want 200", resp.StatusCode)
	}

	seen := alive.seen()
	if len(seen) != 1 || seen[0].TraceID != client.TraceID {
		t.Fatalf("survivor saw %d requests (trace match=%v), want 1 under the client trace",
			len(seen), len(seen) > 0 && seen[0].TraceID == client.TraceID)
	}
	tj := fetchTrace(t, front.URL, client.TraceID.String())
	attempts := spansNamed(tj, "proxy.attempt")
	if len(attempts) != 2 {
		t.Fatalf("retry walk recorded %d attempt spans, want 2", len(attempts))
	}
	var failed, won int
	for _, sp := range attempts {
		if sp.Error {
			failed++
		} else if sp.Attrs["status"] == float64(http.StatusOK) {
			won++
		}
	}
	if failed != 1 || won != 1 {
		t.Errorf("attempts = %d failed / %d ok, want 1/1: %+v", failed, won, attempts)
	}
}

// TestTraceHedgeSiblings: the hedged duplicate is a sibling attempt span
// tagged hedge=true and the root records the hedge outcome.
func TestTraceHedgeSiblings(t *testing.T) {
	a, b := newCapture(t, "a"), newCapture(t, "b")
	byAddr := map[string]*captureBackend{a.addr: a, b.addr: b}
	rt := newTestRouter(t, Config{
		Shards: []string{a.addr, b.addr}, HedgeAfter: 15 * time.Millisecond, Tracer: alwaysTracer("router"),
	})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const key = "hedged-tenant"
	primary, _ := rt.tab.Load().ring.Lookup2(key)
	byAddr[primary].setDelay(400 * time.Millisecond)

	client := trace.NewSpanContext(true)
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/databases/"+key, nil)
	req.Header.Set(trace.TraceparentHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request answered %d, want 200", resp.StatusCode)
	}

	tj := fetchTrace(t, front.URL, client.TraceID.String())
	roots := spansNamed(tj, "proxy")
	attempts := spansNamed(tj, "proxy.attempt")
	if len(roots) != 1 || len(attempts) != 2 {
		t.Fatalf("trace has %d roots / %d attempts, want 1/2: %+v", len(roots), len(attempts), tj.Spans)
	}
	var hedged, plain int
	for _, sp := range attempts {
		if sp.ParentID != roots[0].SpanID {
			t.Errorf("attempt %s parent %q is not the root %q (hedge must be a sibling)",
				sp.SpanID, sp.ParentID, roots[0].SpanID)
		}
		if sp.Attrs["hedge"] == true {
			hedged++
		} else {
			plain++
		}
	}
	if hedged != 1 || plain != 1 {
		t.Errorf("attempts = %d hedged / %d plain, want 1/1", hedged, plain)
	}
	if got := roots[0].Attrs["hedge_outcome"]; got != "win" {
		t.Errorf("root hedge_outcome = %v, want win", got)
	}
}

// TestTraceAdoptOnMiss: the adopt hand-off and its replay both land in the
// request's trace — a proxy.adopt span with ok=true plus a replay attempt.
func TestTraceAdoptOnMiss(t *testing.T) {
	var mu sync.Mutex
	adopted := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/databases/pets/adopt":
			adopted = true
			json.NewEncoder(w).Encode(map[string]string{"state": "ready"})
		case r.URL.Path == "/v1/databases/pets" && adopted:
			json.NewEncoder(w).Encode(map[string]string{"shard": "s0"})
		default:
			http.Error(w, "unknown database", http.StatusNotFound)
		}
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	rt := newTestRouter(t, Config{Shards: []string{addr}, HedgeAfter: -1, Tracer: alwaysTracer("router")})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := trace.NewSpanContext(true)
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/databases/pets", nil)
	req.Header.Set(trace.TraceparentHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adopt-on-miss answered %d, want 200", resp.StatusCode)
	}

	tj := fetchTrace(t, front.URL, client.TraceID.String())
	adopts := spansNamed(tj, "proxy.adopt")
	if len(adopts) != 1 || adopts[0].Attrs["ok"] != true {
		t.Fatalf("proxy.adopt spans = %+v, want exactly one with ok=true", adopts)
	}
	var replayed bool
	for _, sp := range spansNamed(tj, "proxy.attempt") {
		if sp.Attrs["adopt_replay"] == true {
			replayed = true
		}
	}
	if !replayed {
		t.Error("no attempt span tagged adopt_replay=true")
	}
}

// TestTraceMergeAcrossShards: /v1/traces/{id} folds a shard's span tree
// into the router's, keeping each span's service attribution.
func TestTraceMergeAcrossShards(t *testing.T) {
	shardTraces := map[string]trace.TraceJSON{}
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/traces/") {
			mu.Lock()
			tj, ok := shardTraces[strings.TrimPrefix(r.URL.Path, "/v1/traces/")]
			mu.Unlock()
			if !ok {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(tj)
			return
		}
		// Serving path: record what a shard-side tracer would have captured
		// for this request so the later merge has something to find.
		if sc, ok := trace.Extract(r.Header); ok && sc.Sampled {
			mu.Lock()
			shardTraces[sc.TraceID.String()] = trace.TraceJSON{
				TraceID: sc.TraceID.String(),
				Name:    "/v1/translate",
				Spans: []trace.SpanJSON{{
					SpanID:   "aaaaaaaaaaaaaaaa",
					ParentID: sc.SpanID.String(),
					Service:  "shard:test",
					Name:     "/v1/translate",
				}},
			}
			mu.Unlock()
		}
		json.NewEncoder(w).Encode(map[string]string{"shard": "s0"})
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	rt := newTestRouter(t, Config{Shards: []string{addr}, HedgeAfter: -1, Tracer: alwaysTracer("router")})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := trace.NewSpanContext(true)
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/translate",
		strings.NewReader(`{"database":"merged","question":"q"}`))
	req.Header.Set(trace.TraceparentHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	tj := fetchTrace(t, front.URL, client.TraceID.String())
	var routerSpans, shardSpans int
	for _, sp := range tj.Spans {
		switch sp.Service {
		case "router":
			routerSpans++
		case "shard:test":
			shardSpans++
		}
	}
	if routerSpans < 2 || shardSpans != 1 {
		t.Fatalf("merged tree has %d router spans and %d shard spans, want >=2 and 1: %+v",
			routerSpans, shardSpans, tj.Spans)
	}
	// The shard span's parent must be one of the router's attempt spans.
	attempts := map[string]bool{}
	for _, sp := range spansNamed(tj, "proxy.attempt") {
		attempts[sp.SpanID] = true
	}
	for _, sp := range tj.Spans {
		if sp.Service == "shard:test" && !attempts[sp.ParentID] {
			t.Errorf("shard span parent %q is not a router attempt span", sp.ParentID)
		}
	}
}

// TestTracesDisabledProxiesThrough: with no Tracer the router must not
// shadow /v1/traces — the request proxies to a shard like any other GET.
func TestTracesDisabledProxiesThrough(t *testing.T) {
	a := newCapture(t, "a")
	rt := newTestRouter(t, Config{Shards: []string{a.addr}, HedgeAfter: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if len(a.seen()) != 1 {
		t.Fatalf("tracerless router served /v1/traces itself; want it proxied to the shard")
	}
}
