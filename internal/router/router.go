// Package router is the horizontal-sharding tier: a thin HTTP proxy that
// spreads tenants across nl2sql-server shards with a consistent-hash ring,
// health-probes the shard set, retries connection failures against ring
// neighbours, hedges tail latency with a delayed duplicate to the replica
// successor, and drives the register-on-miss hand-off (POST
// /v1/databases/{name}/adopt) so a tenant whose placement moved serves from
// its persisted snapshot instead of re-training.
//
// The routing table (ring over the currently healthy shards) is an
// immutable value behind an atomic pointer — the request path loads it
// lock-free, RCU style, exactly like the catalog's tenant map — and only
// the probe loop writes a replacement when a shard's health transitions.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ShardHeader carries shard attribution on responses. Shards set it to
// their -shard-id; when an upstream answers without one the router fills in
// the target address. Clients may echo it on follow-up requests (job polls)
// for sticky routing — that only works when -shard-id is the shard's
// advertised host:port, which is how the topology harness runs.
const ShardHeader = "X-NL2SQL-Shard"

const (
	ejectThreshold  = 2                      // consecutive probe failures before ejection
	coldHedgeDelay  = 25 * time.Millisecond  // adaptive hedge delay before enough samples
	hedgeMinSamples = 50                     // observations before trusting the p95
	hedgeFloor      = 2 * time.Millisecond   // adaptive clamp: never hedge hotter than this
	hedgeCeil       = 500 * time.Millisecond // adaptive clamp: hedging slower than this is pointless
	maxBodyBytes    = 32 << 20               // request bodies are buffered for retry/hedge replay
)

var errNoShards = errors.New("no healthy shards")

// Config parameterizes a Router. Shards is required; zero values elsewhere
// select the noted defaults.
type Config struct {
	// Shards is the backend set as host:port addresses (an http:// prefix
	// is tolerated and stripped). Order does not matter — placement is
	// order-independent by construction.
	Shards []string
	// VNodes is the ring's virtual-node budget per shard (default
	// DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe cadence (default 1s). Negative
	// disables the background loop; tests then drive CheckNow directly.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default min(ProbeInterval, 2s)).
	ProbeTimeout time.Duration
	// Retries is the number of extra attempts against other healthy shards
	// after a transport error (default 2; negative disables retries).
	Retries int
	// HedgeAfter fixes the hedging delay. Zero selects the adaptive mode —
	// the router's observed p95, clamped to [2ms, 500ms], re-derived each
	// probe tick. Negative disables hedging.
	HedgeAfter time.Duration
	// Registry receives the router_* instruments and the proxy's
	// http_requests_total (default: a fresh registry, served at /v1/metrics).
	Registry *metrics.Registry
	// Tracer, when non-nil, opens a root span per proxied request (adopting a
	// sampled client traceparent), tags each upstream attempt, and serves
	// /v1/traces with cross-shard span merging on /v1/traces/{id}.
	Tracer *trace.Tracer
	// Transport overrides the proxy/probe transport (tests). The default is
	// a pooled http.Transport sized for shard fan-in.
	Transport http.RoundTripper
}

// table is one immutable routing epoch: the ring spans exactly the healthy
// shards. Readers load it with a single atomic pointer read.
type table struct {
	ring  *Ring
	epoch uint64
}

type shardHealth struct {
	fails   int
	healthy bool
}

type adoptCall struct {
	done chan struct{}
	ok   bool
}

// Router proxies the nl2sql service surface across a shard set.
type Router struct {
	cfg           Config
	shards        []string // normalized, sorted, deduplicated
	shardSet      map[string]bool
	probeInterval time.Duration
	probeTimeout  time.Duration

	client      *http.Client
	probeClient *http.Client
	transport   http.RoundTripper

	tab     atomic.Pointer[table]
	rr      atomic.Uint64 // round-robin cursor for keyless requests
	hedgeNs atomic.Int64  // adaptive hedge delay, nanoseconds

	probeMu sync.Mutex // serializes CheckNow; owns health + epoch
	health  map[string]shardHealth
	epoch   uint64

	adoptMu  sync.Mutex
	adopting map[string]*adoptCall

	tracer *trace.Tracer

	reg       *metrics.Registry
	latAll    *metrics.Histogram // aggregate proxy latency, feeds the p95 hedge delay
	latShard  map[string]*metrics.Histogram
	reqCodes  sync.Map // int status -> *metrics.Counter (http_requests_total)
	mRequests *metrics.Counter
	mRetries  *metrics.Counter
	mHedges   *metrics.Counter
	mHedgeWin *metrics.Counter
	mHedgeLos *metrics.Counter
	mEject    *metrics.Counter
	mReadmit  *metrics.Counter
	mAdopt    *metrics.Counter
	gHealthy  *metrics.Gauge

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	looping  bool
}

// New builds a Router over the configured shard set. All shards start
// healthy (optimistic: probes eject the dead ones within two intervals, and
// a router that assumed the worst could serve nothing at boot).
func New(cfg Config) (*Router, error) {
	shards, err := normalizeShards(cfg.Shards)
	if err != nil {
		return nil, err
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	rt := &Router{
		cfg:           cfg,
		shards:        shards,
		shardSet:      map[string]bool{},
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		health:        map[string]shardHealth{},
		adopting:      map[string]*adoptCall{},
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	if rt.probeInterval == 0 {
		rt.probeInterval = time.Second
	}
	if rt.probeTimeout <= 0 {
		rt.probeTimeout = 2 * time.Second
		if rt.probeInterval > 0 && rt.probeInterval < rt.probeTimeout {
			rt.probeTimeout = rt.probeInterval
		}
	}
	rt.transport = cfg.Transport
	if rt.transport == nil {
		tr := &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   2 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
		rt.transport = tr
	}
	noRedirect := func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse // a proxy relays redirects, it does not follow them
	}
	rt.client = &http.Client{Transport: rt.transport, CheckRedirect: noRedirect}
	rt.probeClient = &http.Client{Transport: rt.transport, Timeout: rt.probeTimeout, CheckRedirect: noRedirect}

	for _, s := range shards {
		rt.shardSet[s] = true
		rt.health[s] = shardHealth{healthy: true}
	}

	rt.tracer = cfg.Tracer
	rt.reg = cfg.Registry
	if rt.reg == nil {
		rt.reg = metrics.NewRegistry()
	}
	rt.latAll = metrics.NewHistogram(metrics.DefBuckets)
	rt.latShard = make(map[string]*metrics.Histogram, len(shards))
	for _, s := range shards {
		rt.latShard[s] = rt.reg.Histogram("router_upstream_latency_seconds",
			"Proxied request latency by shard.", metrics.DefBuckets, metrics.L("shard", s))
	}
	rt.mRequests = rt.reg.Counter("router_requests_total", "Requests handled by the proxy path.")
	rt.mRetries = rt.reg.Counter("router_retries_total", "Attempts re-issued to another shard after a transport error.")
	rt.mHedges = rt.reg.Counter("router_hedges_total", "Hedge requests fired to the replica successor.")
	rt.mHedgeWin = rt.reg.Counter("router_hedge_wins_total", "Hedged requests answered by the hedge.")
	rt.mHedgeLos = rt.reg.Counter("router_hedge_losses_total", "Hedged requests answered by the primary after the hedge fired.")
	rt.mEject = rt.reg.Counter("router_ejections_total", "Shards ejected from the ring by health probes.")
	rt.mReadmit = rt.reg.Counter("router_readmissions_total", "Ejected shards readmitted after a passing probe.")
	rt.mAdopt = rt.reg.Counter("router_adoptions_total", "Successful register-on-miss adoptions driven by the router.")
	rt.gHealthy = rt.reg.Gauge("router_healthy_shards", "Shards currently in the routing table.")

	rt.hedgeNs.Store(int64(coldHedgeDelay))
	rt.publishLocked()

	if rt.probeInterval > 0 {
		rt.looping = true
		go rt.probeLoop()
	}
	return rt, nil
}

func normalizeShards(in []string) ([]string, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("router: at least one shard address is required")
	}
	seen := map[string]bool{}
	out := make([]string, 0, len(in))
	for _, s := range in {
		a := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(s), "http://"), "/")
		if a == "" {
			return nil, fmt.Errorf("router: empty shard address")
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return nil, fmt.Errorf("router: bad shard address %q: %v", s, err)
		}
		if seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	sort.Strings(out)
	return out, nil
}

// Close stops the probe loop and releases pooled connections.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	if rt.looping {
		<-rt.done
	}
	if tr, ok := rt.transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckNow(context.Background())
		}
	}
}

// CheckNow runs one probe round synchronously: every shard is probed
// concurrently, health counters advance, and a changed healthy set
// publishes a new routing table. The probe loop calls this on its tick;
// tests call it directly for deterministic eject/readmit sequencing.
func (rt *Router) CheckNow(ctx context.Context) {
	rt.probeMu.Lock()
	defer rt.probeMu.Unlock()
	ok := make([]bool, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ok[i] = rt.probe(ctx, addr)
		}(i, s)
	}
	wg.Wait()
	changed := false
	for i, addr := range rt.shards {
		h := rt.health[addr]
		if ok[i] {
			h.fails = 0
			if !h.healthy {
				h.healthy = true
				changed = true
				rt.mReadmit.Inc()
				slog.Info("shard readmitted", "shard", addr, "epoch", rt.epoch+1)
			}
		} else {
			h.fails++
			if h.healthy && h.fails >= ejectThreshold {
				h.healthy = false
				changed = true
				rt.mEject.Inc()
				slog.Warn("shard ejected", "shard", addr, "fails", h.fails, "epoch", rt.epoch+1)
			}
		}
		rt.health[addr] = h
	}
	if changed {
		rt.publishLocked()
	}
	rt.updateHedgeDelay()
}

func (rt *Router) probe(ctx context.Context, addr string) bool {
	ctx, cancel := context.WithTimeout(ctx, rt.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// publishLocked swaps in a fresh routing table over the healthy subset.
// Caller holds probeMu (or is New, before any reader exists).
func (rt *Router) publishLocked() {
	healthy := make([]string, 0, len(rt.shards))
	for _, s := range rt.shards {
		if rt.health[s].healthy {
			healthy = append(healthy, s)
		}
	}
	rt.epoch++
	rt.tab.Store(&table{ring: BuildRing(healthy, rt.cfg.VNodes), epoch: rt.epoch})
	rt.gHealthy.Set(float64(len(healthy)))
}

// updateHedgeDelay re-derives the adaptive hedge delay from the proxy's own
// latency distribution. Fixed and disabled modes never touch it.
func (rt *Router) updateHedgeDelay() {
	if rt.cfg.HedgeAfter != 0 {
		return
	}
	snap := rt.latAll.Snapshot()
	if snap.Count < hedgeMinSamples {
		return
	}
	d := time.Duration(snap.Quantile(0.95) * float64(time.Second))
	if d < hedgeFloor {
		d = hedgeFloor
	}
	if d > hedgeCeil {
		d = hedgeCeil
	}
	rt.hedgeNs.Store(int64(d))
}

// hedgeDelay reports the current delay and whether hedging is enabled.
func (rt *Router) hedgeDelay() (time.Duration, bool) {
	switch {
	case rt.cfg.HedgeAfter < 0:
		return 0, false
	case rt.cfg.HedgeAfter > 0:
		return rt.cfg.HedgeAfter, true
	default:
		return time.Duration(rt.hedgeNs.Load()), true
	}
}

// Healthy returns the shards currently in the routing table.
func (rt *Router) Healthy() []string {
	return append([]string(nil), rt.tab.Load().ring.Shards()...)
}

// Epoch returns the routing-table generation (bumped on every health
// transition).
func (rt *Router) Epoch() uint64 { return rt.tab.Load().epoch }

// ---- HTTP surface ----

// Handler returns the router's HTTP surface: /healthz (200 iff the table
// is non-empty), /v1/metrics, /v1/router (topology status JSON), and the
// proxy for everything else.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	mux.HandleFunc("GET /v1/router", rt.handleStatus)
	// With tracing off these patterns are absent, so /v1/traces proxies
	// through to a shard like any other GET — a single-shard deployment
	// still answers. With tracing on, the router answers itself, merging
	// shard spans into its own trees on the by-ID lookup.
	if rt.tracer != nil {
		mux.HandleFunc("GET /v1/traces", rt.handleTraces)
		mux.HandleFunc("GET /v1/traces/{id}", rt.handleTraceGet)
	}
	mux.HandleFunc("/", rt.handleProxy)
	return mux
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.tab.Load().ring.Len() == 0 {
		http.Error(w, "no healthy shards", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := rt.reg.WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	w.Write(buf.Bytes())
}

// ShardStatus is one shard's row in the /v1/router report.
type ShardStatus struct {
	Addr      string  `json:"addr"`
	Healthy   bool    `json:"healthy"`
	Placement float64 `json:"placement"` // share of the ring, 0 when ejected
}

// Status is the /v1/router report.
type Status struct {
	Epoch         uint64        `json:"epoch"`
	HealthyShards int           `json:"healthy_shards"`
	HedgeAfterMs  float64       `json:"hedge_after_ms"` // negative when hedging is disabled
	Shards        []ShardStatus `json:"shards"`
}

// Status reports the current topology.
func (rt *Router) Status() Status {
	tab := rt.tab.Load()
	placement := tab.ring.Placement()
	st := Status{
		Epoch:         tab.epoch,
		HealthyShards: tab.ring.Len(),
		HedgeAfterMs:  -1,
	}
	if d, ok := rt.hedgeDelay(); ok {
		st.HedgeAfterMs = float64(d) / float64(time.Millisecond)
	}
	for _, s := range rt.shards {
		share, healthy := placement[s]
		st.Shards = append(st.Shards, ShardStatus{Addr: s, Healthy: healthy, Placement: share})
	}
	return st
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Status())
}

// upstreamResponse is a fully buffered shard reply. Buffering is what makes
// retry, hedging and adopt-then-retry safe: no partially consumed stream
// ever reaches the client.
type upstreamResponse struct {
	status int
	header http.Header
	body   []byte
	target string
}

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Inc()
	// Root span for the whole proxied exchange. A sampled client traceparent
	// forces recording and parents this span under the caller's; attempts
	// then re-inject so each shard's own root nests under its attempt span.
	parent, _ := trace.Extract(r.Header)
	ctx, sp := rt.tracer.StartRoot(r.Context(), "proxy", parent)
	final := http.StatusOK
	if sp != nil {
		sp.SetRoute(r.URL.Path)
		sp.SetAttrs(trace.Str("method", r.Method))
		w.Header().Set(trace.IDHeader, sp.TraceID())
		r = r.WithContext(ctx)
		defer func() {
			sp.SetAttrs(trace.Int("status", int64(final)))
			sp.SetError(final >= http.StatusInternalServerError)
			sp.Finish()
		}()
	}
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			final = http.StatusBadRequest
			rt.writeError(w, final, "reading request body: "+err.Error())
			return
		}
		if len(b) > maxBodyBytes {
			final = http.StatusRequestEntityTooLarge
			rt.writeError(w, final, "request body exceeds the proxy buffer limit")
			return
		}
		body = b
	}
	key := RoutingKey(r, body)
	if key != "" {
		sp.SetTenant(key)
	}
	res, err := rt.dispatch(r, body, key)
	if err != nil {
		final = http.StatusBadGateway
		if errors.Is(err, errNoShards) {
			final = http.StatusServiceUnavailable
		}
		sp.SetAttrs(trace.Str("proxy_error", err.Error()))
		rt.writeError(w, final, "router: "+err.Error())
		return
	}
	// Register-on-miss: a 404 for a tenant the ring places on this shard may
	// just mean the placement moved (shard died, shard set changed) while the
	// tenant's trained state sits in the shared store. One single-flighted
	// adopt asks the shard to take it over; on success the original request
	// is replayed once.
	if res.status == http.StatusNotFound && key != "" && !strings.HasSuffix(r.URL.Path, "/adopt") {
		if rt.adoptOnce(r.Context(), res.target, key) {
			if res2, err2 := rt.proxyOnce(r.Context(), r, body, res.target, trace.Bool("adopt_replay", true)); err2 == nil {
				res = res2
			}
		}
	}
	final = res.status
	rt.countRequest(res.status)
	// The shard stamped the same trace ID the router already set on this
	// response; drop its copy so the header appears once.
	if sp != nil {
		res.header.Del(trace.IDHeader)
	}
	copyHeaders(w.Header(), res.header)
	if w.Header().Get(ShardHeader) == "" {
		w.Header().Set(ShardHeader, res.target)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	rt.countRequest(status)
	http.Error(w, msg, status)
}

// countRequest records the final status on http_requests_total with the
// same label shape the shards use, so a metrics consumer (the loadgen
// harness included) can account for offered load at the router alone.
func (rt *Router) countRequest(status int) {
	if c, ok := rt.reqCodes.Load(status); ok {
		c.(*metrics.Counter).Inc()
		return
	}
	c := rt.reg.Counter("http_requests_total", "HTTP requests by route and status code.",
		metrics.L("route", "proxy"), metrics.L("code", strconv.Itoa(status)))
	actual, _ := rt.reqCodes.LoadOrStore(status, c)
	actual.(*metrics.Counter).Inc()
}

// RoutingKey extracts the tenant identity a request should shard on: the
// /v1/databases/{name} path segment, else the database (or, on the
// registration collection, name) field of a JSON body. Empty means the
// request is tenant-free and round-robins.
func RoutingKey(r *http.Request, body []byte) string {
	if p, ok := strings.CutPrefix(r.URL.Path, "/v1/databases/"); ok && p != "" {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			p = p[:i]
		}
		return strings.ToLower(p)
	}
	if len(body) > 0 {
		var probe struct {
			Database string `json:"database"`
			Name     string `json:"name"`
		}
		if json.Unmarshal(body, &probe) == nil {
			if probe.Database != "" {
				return strings.ToLower(probe.Database)
			}
			if r.URL.Path == "/v1/databases" && probe.Name != "" {
				return strings.ToLower(probe.Name)
			}
		}
	}
	return ""
}

// hedgeable limits duplicated requests to surfaces that are safe and cheap
// to issue twice: reads, and the two idempotent hot-path translations.
// Batch fan-outs and job submissions are never duplicated — a hedged job
// would run twice.
func hedgeable(r *http.Request) bool {
	if r.Method == http.MethodGet {
		return true
	}
	if r.Method != http.MethodPost {
		return false
	}
	return r.URL.Path == "/v1/translate" || r.URL.Path == "/v1/execute"
}

type attemptResult struct {
	res *upstreamResponse
	err error
}

// dispatch routes one buffered request: candidate order is ring primary,
// replica successor, then the remaining healthy shards; transport errors
// spend the retry budget walking that order, and the first attempt hedges
// when eligible.
func (rt *Router) dispatch(r *http.Request, body []byte, key string) (*upstreamResponse, error) {
	tab := rt.tab.Load()
	shards := tab.ring.Shards()
	if len(shards) == 0 {
		return nil, errNoShards
	}
	var primary, successor string
	if sticky := r.Header.Get(ShardHeader); sticky != "" && rt.shardSet[sticky] {
		primary = sticky
	} else if key != "" {
		primary, successor = tab.ring.Lookup2(key)
	} else {
		i := int(rt.rr.Add(1) % uint64(len(shards)))
		primary = shards[i]
		if len(shards) > 1 {
			successor = shards[(i+1)%len(shards)]
		}
	}
	cands := make([]string, 0, len(shards)+1)
	cands = append(cands, primary)
	if successor != "" && successor != primary {
		cands = append(cands, successor)
	}
	for _, s := range shards {
		if s != primary && s != successor {
			cands = append(cands, s)
		}
	}
	if max := 1 + rt.cfg.Retries; len(cands) > max {
		cands = cands[:max]
	}
	trace.FromContext(r.Context()).SetAttrs(
		trace.Str("primary_shard", primary), trace.Int("candidates", int64(len(cands))))
	hedge := successor != "" && hedgeable(r)
	var lastErr error
	for i, target := range cands {
		if i > 0 {
			rt.mRetries.Inc()
		}
		var res *upstreamResponse
		var err error
		if d, ok := rt.hedgeDelay(); i == 0 && hedge && ok {
			res, err = rt.hedgedOnce(r.Context(), r, body, primary, successor, d)
		} else {
			res, err = rt.proxyOnce(r.Context(), r, body, target, trace.Int("attempt", int64(i)))
		}
		if err != nil {
			if r.Context().Err() != nil {
				return nil, err // the client went away; more attempts serve no one
			}
			lastErr = err
			continue
		}
		return res, nil
	}
	return nil, lastErr
}

// hedgedOnce races the primary against a delayed duplicate on the replica
// successor. First usable response wins and the loser's context is
// cancelled. A hedge 404 while the primary is still in flight is held back
// — the replica may simply not host the tenant — and only used if the
// primary fails outright.
func (rt *Router) hedgedOnce(ctx context.Context, r *http.Request, body []byte, primary, successor string, delay time.Duration) (*upstreamResponse, error) {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan attemptResult, 1)
	go func() {
		res, err := rt.proxyOnce(pctx, r, body, primary, trace.Int("attempt", 0))
		pch <- attemptResult{res, err}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case pr := <-pch:
		return pr.res, pr.err
	case <-timer.C:
	}
	rt.mHedges.Inc()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hch := make(chan attemptResult, 1)
	go func() {
		// The duplicate is a sibling attempt span tagged hedge=true, so a
		// trace shows both racers and which shard each one hit.
		res, err := rt.proxyOnce(hctx, r, body, successor, trace.Bool("hedge", true))
		hch <- attemptResult{res, err}
	}()
	root := trace.FromContext(ctx)
	var held *upstreamResponse
	var pdone, hdone bool
	var perr error
	for {
		select {
		case pr := <-pch:
			pdone = true
			if pr.err == nil {
				hcancel()
				rt.mHedgeLos.Inc()
				root.SetAttrs(trace.Str("hedge_outcome", "loss"))
				return pr.res, nil
			}
			perr = pr.err
			if held != nil {
				rt.mHedgeWin.Inc()
				root.SetAttrs(trace.Str("hedge_outcome", "win"))
				return held, nil
			}
			if hdone {
				return nil, perr
			}
		case hr := <-hch:
			hdone = true
			if hr.err == nil {
				if hr.res.status == http.StatusNotFound && !pdone {
					held = hr.res
					continue
				}
				pcancel()
				rt.mHedgeWin.Inc()
				root.SetAttrs(trace.Str("hedge_outcome", "win"))
				return hr.res, nil
			}
			if pdone {
				return nil, perr
			}
		}
	}
}

// proxyOnce issues the buffered request to one shard and buffers the reply.
// Each call is one "proxy.attempt" span; re-injecting its traceparent (over
// whatever the client sent) parents the shard's root span under this
// attempt, which is what stitches one trace across processes.
func (rt *Router) proxyOnce(ctx context.Context, r *http.Request, body []byte, target string, attrs ...trace.Attr) (*upstreamResponse, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, "http://"+target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	req.Header.Del(ShardHeader) // consumed for stickiness; shards answer with their own
	sctx, sp := trace.StartSpan(ctx, "proxy.attempt")
	if sp != nil {
		sp.SetAttrs(trace.Str("shard", target))
		sp.SetAttrs(attrs...)
		trace.Inject(sctx, req.Header)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		sp.SetError(true)
		sp.SetAttrs(trace.Str("error", err.Error()))
		sp.Finish()
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		sp.SetError(true)
		sp.SetAttrs(trace.Str("error", err.Error()))
		sp.Finish()
		return nil, err
	}
	elapsed := time.Since(start)
	sp.SetAttrs(trace.Int("status", int64(resp.StatusCode)))
	sp.Finish()
	rt.latAll.Observe(elapsed.Seconds())
	if h := rt.latShard[target]; h != nil {
		h.Observe(elapsed.Seconds())
	}
	return &upstreamResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: rb, target: target}, nil
}

// adoptOnce single-flights the hand-off trigger per tenant key: one POST
// .../adopt per storm of concurrent misses, everyone else waits for its
// verdict.
func (rt *Router) adoptOnce(ctx context.Context, target, key string) (adopted bool) {
	if _, asp := trace.StartSpan(ctx, "proxy.adopt"); asp != nil {
		asp.SetAttrs(trace.Str("shard", target), trace.Str("tenant", key))
		defer func() {
			asp.SetAttrs(trace.Bool("ok", adopted))
			asp.Finish()
		}()
	}
	rt.adoptMu.Lock()
	if c, ok := rt.adopting[key]; ok {
		rt.adoptMu.Unlock()
		select {
		case <-c.done:
			return c.ok
		case <-ctx.Done():
			return false
		}
	}
	c := &adoptCall{done: make(chan struct{})}
	rt.adopting[key] = c
	rt.adoptMu.Unlock()
	defer func() {
		rt.adoptMu.Lock()
		delete(rt.adopting, key)
		rt.adoptMu.Unlock()
		close(c.done)
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+target+"/v1/databases/"+key+"/adopt", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.ok = resp.StatusCode/100 == 2
	if c.ok {
		rt.mAdopt.Inc()
	}
	return c.ok
}

// hopHeaders are connection-scoped and never forwarded (RFC 9110 §7.6.1).
// Content-Length is recomputed from the buffered body.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
	"Content-Length",
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}
