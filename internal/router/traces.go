package router

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/trace"
)

// TraceListResponse wraps the router's GET /v1/traces: its own captured
// traces, newest-first, retained (slow/error) ahead of the recent ring.
// Listing is local to the router — the edge samples every proxied request,
// so its list is the topology's index; the by-ID lookup does the fan-out.
type TraceListResponse struct {
	Service string          `json:"service,omitempty"`
	Traces  []trace.Summary `json:"traces"`
}

func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	f, err := trace.FilterFromQuery(r.URL.Query())
	if err != nil {
		http.Error(w, "bad filter: "+err.Error(), http.StatusBadRequest)
		return
	}
	out := TraceListResponse{Service: rt.tracer.Service(), Traces: rt.tracer.Traces(f)}
	if out.Traces == nil {
		out.Traces = []trace.Summary{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleTraceGet assembles the cross-process tree for one trace ID: the
// router's own spans plus whatever every healthy shard captured under the
// same ID (shard spans carry their own service name, so the merged tree
// stays attributable). Shards that are down, never sampled the trace, or
// answer garbage are simply absent from the merge.
func (rt *Router) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id, ok := trace.ParseTraceID(r.PathValue("id"))
	if !ok {
		http.Error(w, "malformed trace id", http.StatusBadRequest)
		return
	}
	merged, found := rt.tracer.Trace(id)
	shards := rt.tab.Load().ring.Shards()
	remote := make([]*trace.TraceJSON, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
				"http://"+addr+"/v1/traces/"+id.String(), nil)
			if err != nil {
				return
			}
			resp, err := rt.probeClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			var tj trace.TraceJSON
			if json.NewDecoder(resp.Body).Decode(&tj) == nil {
				remote[i] = &tj
			}
		}(i, s)
	}
	wg.Wait()
	for _, tj := range remote {
		if tj == nil {
			continue
		}
		if !found {
			// The router never sampled this ID (client went to a shard
			// directly, or the router's ring churned it out): the first
			// shard that has it seeds the trace-level fields.
			merged, found = *tj, true
			continue
		}
		merged.Spans = append(merged.Spans, tj.Spans...)
		merged.Error = merged.Error || tj.Error
	}
	if !found {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return
	}
	sort.SliceStable(merged.Spans, func(i, j int) bool {
		return merged.Spans[i].Start.Before(merged.Spans[j].Start)
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(merged)
}
