// Package router is the horizontal-sharding tier: a consistent-hash ring
// places tenants (by database name) on shards, an RCU-style immutable
// routing table republishes placement on health changes, and a proxying
// HTTP handler forwards requests over pooled connections with budgeted
// retries and tail-latency hedging. The package mirrors the catalog's
// concurrency design one level up the stack: the request hot path does one
// atomic pointer load and a lock-free ring lookup; all mutation (health
// transitions, resharding) happens aside and lands by pointer swap.
package router

import (
	"fmt"
	"math/bits"
)

// DefaultVNodes is the default virtual-node budget per shard. At this
// granularity a 4-shard ring keeps every shard's keyspace share within a
// couple percent of fair.
const DefaultVNodes = 160

// maxPartitions bounds the owner tables (two int16 entries per partition)
// regardless of how large a vnode budget the caller asks for.
const maxPartitions = 1 << 16

// Ring is an immutable consistent-hash ring over a shard set. Build one
// with BuildRing and share it freely: every method is read-only and safe
// for unsynchronized concurrent use, so a Ring can sit behind an atomic
// pointer and be swapped wholesale when membership changes (RCU).
//
// The layout is a fixed-partition ring (the Dynamo/Cassandra vnode
// design) rather than a sorted-point ring: the hash circle is divided
// into 2^shift equal partitions and each partition is owned by the shard
// with the highest rendezvous weight for it. A shard's virtual nodes are
// the partitions it wins — scattered pseudo-randomly around the circle —
// which preserves the consistent-hashing contract while beating a
// sorted-point ring on both fronts that matter here: balance concentrates
// binomially in the partition count instead of drifting with exponential
// arc lengths, and membership changes are *exactly* minimal (a partition
// changes owner only when its winning shard itself arrives or departs,
// so no key ever moves between surviving shards). Lookup is one hash and
// one table index: cheaper than a binary search, and allocation-free.
type Ring struct {
	shards []string
	owner  []int16 // per-partition owning shard index
	second []int16 // per-partition runner-up (replica successor), -1 if none
	shift  uint    // partition = keyhash >> (64 - shift)
}

// BuildRing constructs a ring over shards with at least vnodes virtual
// nodes (won partitions) per shard; vnodes <= 0 selects DefaultVNodes.
// Placement derives from shard names alone — configuration order is
// irrelevant — so independent routers given the same shard set agree on
// every tenant's home, and adding or removing one shard moves only that
// shard's partitions (~1/N of the keyspace).
func BuildRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: append([]string(nil), shards...)}
	if len(r.shards) == 0 {
		return r
	}
	// The partition count derives from the vnode budget alone — never
	// from the shard count. That invariant is what makes membership
	// changes minimal: the key→partition mapping is fixed, so adding or
	// removing a shard can only flip partition owners, never re-slice the
	// circle. 64 partitions per requested vnode (8192 at the 128-vnode
	// floor) puts a 4-shard ring's relative share deviation at ~1.9% for
	// one sigma, so the documented 15% balance bound sits beyond seven
	// sigmas instead of the ~2 a sorted-point ring manages.
	parts := nextPow2(64 * vnodes)
	if parts > maxPartitions {
		parts = maxPartitions
	}
	r.shift = uint(bits.TrailingZeros(uint(parts)))
	r.owner = make([]int16, parts)
	r.second = make([]int16, parts)

	bases := make([]uint64, len(r.shards))
	for i, s := range r.shards {
		bases[i] = mix64(hash64(s))
	}
	for p := 0; p < parts; p++ {
		ph := mix64(uint64(p)*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909)
		best, next := -1, -1
		var bestW, nextW uint64
		for i := range bases {
			w := mix64(bases[i] ^ ph)
			switch {
			case best == -1 || w > bestW || (w == bestW && r.shards[i] < r.shards[best]):
				next, nextW = best, bestW
				best, bestW = i, w
			case next == -1 || w > nextW || (w == nextW && r.shards[i] < r.shards[next]):
				next, nextW = i, w
			}
		}
		r.owner[p] = int16(best)
		r.second[p] = int16(next)
	}
	return r
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the shard set the ring was built over (do not mutate).
func (r *Ring) Shards() []string { return r.shards }

// Len reports the number of shards on the ring.
func (r *Ring) Len() int { return len(r.shards) }

// Lookup maps a key to its owning shard. It allocates nothing — the
// routing hot path runs under an atomic pointer load, and a lookup is one
// hash and one table index. Empty rings return "".
func (r *Ring) Lookup(key string) string {
	if len(r.owner) == 0 {
		return ""
	}
	return r.shards[r.owner[r.partition(key)]]
}

// Lookup2 maps a key to its owning shard and the replica successor — the
// runner-up shard for the key's partition, the natural target for hedged
// requests and failover. successor is "" on a single-shard ring.
// Allocation-free, like Lookup.
func (r *Ring) Lookup2(key string) (primary, successor string) {
	if len(r.owner) == 0 {
		return "", ""
	}
	p := r.partition(key)
	primary = r.shards[r.owner[p]]
	if s := r.second[p]; s >= 0 {
		successor = r.shards[s]
	}
	return primary, successor
}

// partition maps a key to its partition index via the top hash bits.
func (r *Ring) partition(key string) int {
	return int(mix64(hash64(key)) >> (64 - r.shift))
}

// hash64 is FNV-1a over the key bytes: allocation-free on a string input
// (unlike hash/fnv, which costs a Write([]byte) conversion) and plenty for
// placement once finished through mix64.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: FNV's avalanche is weak in the high
// bits, and both partition selection and rendezvous weights live entirely
// off high-quality uniform values.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Placement summarizes the ring's keyspace shares for diagnostics:
// fraction of the hash circle owned per shard.
func (r *Ring) Placement() map[string]float64 {
	out := make(map[string]float64, len(r.shards))
	if len(r.owner) == 0 {
		return out
	}
	per := 1.0 / float64(len(r.owner))
	for _, o := range r.owner {
		out[r.shards[o]] += per
	}
	return out
}

// String renders a short description for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("Ring{%d shards, %d partitions}", len(r.shards), len(r.owner))
}
