// Package loadgen is the HTTP load generator for the nl2sql service: it
// drives the real serving stack (router, middleware, JSON codecs, pipeline,
// caches) rather than in-process benchmarks, and reports throughput, error
// rate and latency percentiles in the BENCH_*.json schema family so the perf
// trajectory of the HTTP path is as machine-checkable as the executor's.
//
// Two driving disciplines:
//
//   - Closed loop (Rate == 0): Workers goroutines issue requests
//     back-to-back. Measures capacity — what the server can sustain when the
//     clients saturate it.
//   - Open loop (Rate > 0): requests are dispatched on a fixed-rate clock
//     regardless of how long earlier ones take, the discipline that exposes
//     queueing delay honestly (a closed loop co-ordinates with the server's
//     slowness and hides it). Dispatches that would exceed MaxInFlight are
//     counted as dropped rather than silently coalesced.
//
// The request mix fans across the service surface: single translations,
// /execute SQL, /v1/batch fan-outs and async /v1/jobs submissions, against
// the benchmark corpus or against Tenants freshly registered synthetic
// tenant databases (exercising the multi-tenant catalog hot path).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Buckets for request latency in seconds: finer than metrics.DefBuckets at
// the fast end because percentile resolution is the whole point here.
var latencyBuckets = []float64{
	0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
	0.1, 0.2, 0.5, 1, 2, 5, 10,
}

// Mix weights the request types; a zero weight disables the type. The zero
// Mix is replaced by DefaultMix.
type Mix struct {
	Translate int `json:"translate"`
	Execute   int `json:"execute"`
	Batch     int `json:"batch"`
	Jobs      int `json:"jobs"`
}

// DefaultMix leans on the two hot-path endpoints with a trickle of batch and
// async traffic.
var DefaultMix = Mix{Translate: 4, Execute: 4, Batch: 1, Jobs: 1}

func (m Mix) total() int { return m.Translate + m.Execute + m.Batch + m.Jobs }

// ParseMix parses "translate=4,execute=4,batch=1,jobs=1" (absent types get
// weight 0; an empty string means DefaultMix).
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix, nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Mix{}, fmt.Errorf("loadgen: bad mix entry %q (want type=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix weight %q", kv[1])
		}
		switch strings.ToLower(kv[0]) {
		case "translate":
			m.Translate = w
		case "execute":
			m.Execute = w
		case "batch":
			m.Batch = w
		case "jobs":
			m.Jobs = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown request type %q", kv[0])
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix has zero total weight")
	}
	return m, nil
}

// Config parameterizes a run. BaseURL and Duration are required; everything
// else has a default noted on the field.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080". A comma-
	// separated list fans requests round-robin across several equivalent
	// fronts — redundant routers over one shard set, or any targets that
	// serve a consistent view of the same tenants.
	BaseURL string
	// Duration is how long to generate load.
	Duration time.Duration
	// Workers is the closed-loop concurrency (default 8); in open-loop mode
	// it only sizes the connection pool.
	Workers int
	// Rate > 0 selects open-loop mode at that many requests/second.
	Rate float64
	// RateEnd > 0 turns the open loop into a linear ramp: the dispatch rate
	// slides from Rate to RateEnd over Duration (requires Rate > 0). Zero
	// keeps the classic constant-rate clock.
	RateEnd float64
	// MaxInFlight bounds open-loop concurrency; dispatches beyond it are
	// counted as dropped (default 256).
	MaxInFlight int
	// Mix weights the request types (zero value = DefaultMix).
	Mix Mix
	// Tasks is the dev task-id range [0,Tasks) translate/batch/jobs draw
	// from (default 16). Must not exceed the server's dev-set size.
	Tasks int
	// BatchSize is the task count per /v1/batch and /v1/jobs request
	// (default 8).
	BatchSize int
	// Tenants > 0 registers that many synthetic tenant databases up front
	// and directs translate/execute/batch/jobs at them round-robin,
	// exercising the multi-tenant catalog path instead of the benchmark
	// corpus.
	Tenants int
	// Seed drives the deterministic request mix (default 1).
	Seed int64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
	// TraceSample, when > 0, stamps that fraction of requests with a
	// sampled W3C traceparent. The edge decision wins server-side: stamped
	// requests are always recorded (whatever the server's own -trace-sample),
	// and their trace IDs feed the per-op slow-trace report rows.
	TraceSample float64
	// SlowTraces is how many of the slowest sampled requests to report per
	// op (default 5).
	SlowTraces int
	// Client overrides the HTTP client (tests); when nil the process-wide
	// pooled client is used, sized to the run's in-flight bound.
	Client *http.Client

	// targets is BaseURL split and normalized by withDefaults.
	targets []string
}

// The pooled transport is process-wide: successive runs (and concurrent
// multi-target runs) reuse one warm connection pool instead of each
// building a transport whose sockets die with the run. The per-host idle
// cap only ratchets up — a small run after a big one must not shrink the
// pool under the big run's feet.
var (
	transportMu     sync.Mutex
	sharedTr        *http.Transport
	sharedTrPerHost int
)

// pooledClient returns a client over the shared transport with the per-host
// idle-connection cap raised to at least bound — the run's worst-case
// in-flight count, so closed-loop workers (and open-loop bursts up to
// MaxInFlight) never cycle connections through TIME_WAIT.
func pooledClient(bound int, timeout time.Duration) *http.Client {
	transportMu.Lock()
	defer transportMu.Unlock()
	if sharedTr == nil {
		sharedTr = http.DefaultTransport.(*http.Transport).Clone()
	}
	if bound > sharedTrPerHost {
		sharedTrPerHost = bound
		sharedTr.MaxIdleConnsPerHost = bound
		if sharedTr.MaxIdleConns < 2*bound {
			sharedTr.MaxIdleConns = 2 * bound
		}
	}
	return &http.Client{Timeout: timeout, Transport: sharedTr}
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("loadgen: BaseURL is required")
	}
	c.targets = c.targets[:0]
	for _, u := range strings.Split(c.BaseURL, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			c.targets = append(c.targets, u)
		}
	}
	if len(c.targets) == 0 {
		return c, fmt.Errorf("loadgen: BaseURL holds no usable targets")
	}
	c.BaseURL = c.targets[0]
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: Duration must be positive")
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.RateEnd < 0 || c.Rate < 0 {
		return c, fmt.Errorf("loadgen: negative rates (rate %g, rate-end %g)", c.Rate, c.RateEnd)
	}
	if c.RateEnd > 0 && c.Rate == 0 {
		return c, fmt.Errorf("loadgen: RateEnd requires an open loop (Rate > 0)")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix
	}
	if c.Tasks <= 0 {
		c.Tasks = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.SlowTraces <= 0 {
		c.SlowTraces = 5
	}
	if c.Client == nil {
		// The in-flight bound: closed loop = the worker count, open loop =
		// whatever MaxInFlight admits (dispatch goroutines, not workers,
		// carry the concurrency there).
		bound := c.Workers + 16
		if c.Rate > 0 && c.MaxInFlight > bound {
			bound = c.MaxInFlight
		}
		c.Client = pooledClient(bound, c.Timeout)
	}
	return c, nil
}

// LatencyMs summarizes a latency distribution in milliseconds. P50/P95/P99
// are interpolated from the fixed-bucket histogram (error bounded by bucket
// width); Mean and Max are exact.
type LatencyMs struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// OpResult is one request type's outcome (plus the "all" aggregate row).
type OpResult struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	// Errors are transport-level failures (no HTTP response); Non2xx are
	// HTTP responses outside 2xx, of which Status429 counts the admission-
	// control shed (queue-full / over-capacity) subset. Dropped counts
	// open-loop dispatches shed because MaxInFlight was reached (never
	// sent, not in Requests).
	Errors    int64 `json:"errors"`
	Non2xx    int64 `json:"non_2xx"`
	Status429 int64 `json:"status_429,omitempty"`
	Dropped   int64 `json:"dropped,omitempty"`
	// ThroughputRPS covers sent requests only. ErrorRate is the gate input:
	// errors, non-2xx AND generator-side drops, over the offered load
	// (Requests + Dropped) — a drop never reaches the latency histogram (it
	// was never sent) but must not make the error rate look better.
	ThroughputRPS float64   `json:"throughput_rps"`
	ErrorRate     float64   `json:"error_rate"`
	LatencyMs     LatencyMs `json:"latency_ms"`
	// SlowTraces lists the op's slowest traceparent-stamped requests
	// (present only when Config.TraceSample > 0): the IDs to feed straight
	// into GET /v1/traces/{id} for the full cross-process span tree.
	SlowTraces []SlowTrace `json:"slow_traces,omitempty"`
}

// SlowTrace pairs a sampled request's trace ID with its client-side latency.
type SlowTrace struct {
	TraceID    string  `json:"trace_id"`
	DurationMs float64 `json:"duration_ms"`
}

// slowTracker keeps the n slowest sampled requests, sorted slowest-first.
// A plain locked insertion keeps it simple: it only runs for sampled
// requests and n is small.
type slowTracker struct {
	mu  sync.Mutex
	n   int
	top []SlowTrace
}

func (s *slowTracker) observe(id string, d time.Duration) {
	ms := float64(d) / 1e6
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.top) >= s.n && ms <= s.top[len(s.top)-1].DurationMs {
		return
	}
	i := sort.Search(len(s.top), func(i int) bool { return s.top[i].DurationMs < ms })
	s.top = append(s.top, SlowTrace{})
	copy(s.top[i+1:], s.top[i:])
	s.top[i] = SlowTrace{TraceID: id, DurationMs: ms}
	if len(s.top) > s.n {
		s.top = s.top[:s.n]
	}
}

func (s *slowTracker) snapshot() []SlowTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SlowTrace(nil), s.top...)
}

// Report is the run's machine-readable result, in the BENCH_*.json schema
// family (same provenance header).
type Report struct {
	benchfmt.Header
	// Mode is "closed" or "open".
	Mode            string  `json:"mode"`
	DurationSeconds float64 `json:"duration_seconds"`
	Workers         int     `json:"workers"`
	RateRPS         float64 `json:"rate_rps,omitempty"`
	RateEndRPS      float64 `json:"rate_end_rps,omitempty"`
	Tenants         int     `json:"tenants"`
	Seed            int64   `json:"seed"`
	// Results carries one row per active request type plus the "all"
	// aggregate, which is always last.
	Results []OpResult `json:"results"`
}

// All returns the aggregate row.
func (r *Report) All() OpResult {
	for _, res := range r.Results {
		if res.Name == "all" {
			return res
		}
	}
	return OpResult{}
}

// opStats accumulates one request type's measurements.
type opStats struct {
	name      string
	requests  atomic.Int64
	errors    atomic.Int64
	non2xx    atomic.Int64
	status429 atomic.Int64
	dropped   atomic.Int64
	hist      *metrics.Histogram
	slow      *slowTracker
}

type runner struct {
	cfg     Config
	ops     []string // weighted op names, one entry per weight unit
	stats   map[string]*opStats
	order   []string
	execSQL []execTarget // benchmark-database execute targets
	tenants []string
	rrc     atomic.Uint64 // round-robin cursor over cfg.targets
}

// target picks the next base URL round-robin (a single target is the
// overwhelmingly common case and skips the counter).
func (r *runner) target() string {
	if len(r.cfg.targets) == 1 {
		return r.cfg.targets[0]
	}
	return r.cfg.targets[int(r.rrc.Add(1)%uint64(len(r.cfg.targets)))]
}

type execTarget struct {
	Database string
	SQL      string
}

// Run executes the configured load and returns the report. The context
// cancels the run early (the report covers whatever completed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, stats: map[string]*opStats{}}
	for name, w := range map[string]int{
		"translate": cfg.Mix.Translate,
		"execute":   cfg.Mix.Execute,
		"batch":     cfg.Mix.Batch,
		"jobs":      cfg.Mix.Jobs,
	} {
		if w <= 0 {
			continue
		}
		r.stats[name] = &opStats{
			name: name,
			hist: metrics.NewHistogram(latencyBuckets),
			slow: &slowTracker{n: cfg.SlowTraces},
		}
		for i := 0; i < w; i++ {
			r.ops = append(r.ops, name)
		}
	}
	sort.Strings(r.ops) // deterministic op table independent of map order
	for name := range r.stats {
		r.order = append(r.order, name)
	}
	sort.Strings(r.order)

	if cfg.Tenants > 0 {
		if err := r.registerTenants(ctx); err != nil {
			return nil, err
		}
	} else if r.stats["execute"] != nil {
		if err := r.discoverExecTargets(ctx); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	deadline, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	if cfg.Rate > 0 {
		r.openLoop(deadline)
	} else {
		r.closedLoop(deadline)
	}
	elapsed := time.Since(start)

	return r.report(elapsed), nil
}

// closedLoop: Workers goroutines issuing back-to-back requests.
func (r *runner) closedLoop(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(me)))
			for ctx.Err() == nil {
				r.do(ctx, rng.Intn(len(r.ops)), rng)
			}
		}(w)
	}
	wg.Wait()
}

// rateAt is the open loop's target dispatch rate after elapsed run time:
// constant at Rate classically, or sliding linearly to RateEnd over the
// configured Duration when a ramp was requested.
func (r *runner) rateAt(elapsed time.Duration) float64 {
	if r.cfg.RateEnd <= 0 || r.cfg.RateEnd == r.cfg.Rate {
		return r.cfg.Rate
	}
	frac := float64(elapsed) / float64(r.cfg.Duration)
	if frac > 1 {
		frac = 1
	}
	return r.cfg.Rate + (r.cfg.RateEnd-r.cfg.Rate)*frac
}

// openLoop: dispatch on a rate clock, independent of response times. The
// next dispatch instant is scheduled in absolute time from the current
// target rate, so a ramp stays an honest open loop: a slow server delays
// nothing, and a generator that falls behind catches up in a burst rather
// than silently rescaling the offered load.
func (r *runner) openLoop(ctx context.Context) {
	sem := make(chan struct{}, r.cfg.MaxInFlight)
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	var wg sync.WaitGroup
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	start := time.Now()
	next := start
	for {
		rate := r.rateAt(time.Since(start))
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			timer.Reset(d)
			select {
			case <-ctx.Done():
				wg.Wait()
				return
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return
		}
		op := rng.Intn(len(r.ops))
		// Per-request deterministic sub-seed: the worker rng below must
		// not be shared across goroutines.
		sub := rng.Int63()
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				r.do(ctx, op, rand.New(rand.NewSource(sub)))
			}()
		default:
			// The server (or the pool bound) can't keep up with the
			// offered rate; shedding here keeps the clock honest instead
			// of letting the generator degrade into a closed loop.
			r.stats[r.ops[op]].dropped.Add(1)
		}
	}
}

// traceKey carries a pre-rendered traceparent header value from do to post
// through the context — the op helpers between them stay trace-unaware.
type traceKey struct{}

// do issues one request of the given weighted-op index and records it.
func (r *runner) do(ctx context.Context, opIdx int, rng *rand.Rand) {
	name := r.ops[opIdx]
	st := r.stats[name]
	var (
		status  int
		err     error
		traceID string
	)
	if r.cfg.TraceSample > 0 && rng.Float64() < r.cfg.TraceSample {
		// Stamp the request with a fresh sampled trace context; the sampled
		// flag forces recording at the router/shard regardless of their own
		// head-sampling rate, so the slow-trace IDs below always resolve.
		sc := trace.NewSpanContext(true)
		ctx = context.WithValue(ctx, traceKey{}, sc.Header())
		traceID = sc.TraceID.String()
	}
	start := time.Now()
	switch name {
	case "translate":
		status, err = r.doTranslate(ctx, rng)
	case "execute":
		status, err = r.doExecute(ctx, rng)
	case "batch":
		status, err = r.doBatch(ctx, rng)
	case "jobs":
		status, err = r.doJobs(ctx, rng)
	}
	if err != nil {
		if ctx.Err() != nil {
			// The run deadline tore the request down mid-flight; that is the
			// harness stopping, not the server failing.
			return
		}
		st.requests.Add(1)
		st.errors.Add(1)
		return
	}
	st.requests.Add(1)
	st.hist.ObserveSince(start)
	if traceID != "" {
		st.slow.observe(traceID, time.Since(start))
	}
	if status/100 != 2 {
		st.non2xx.Add(1)
		if status == http.StatusTooManyRequests {
			st.status429.Add(1)
		}
	}
}

// post issues a JSON POST and drains the response body (keep-alive reuse).
func (r *runner) post(ctx context.Context, path string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.target()+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp, ok := ctx.Value(traceKey{}).(string); ok {
		req.Header.Set(trace.TraceparentHeader, tp)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (r *runner) doTranslate(ctx context.Context, rng *rand.Rand) (int, error) {
	if len(r.tenants) > 0 {
		tenant := r.tenants[rng.Intn(len(r.tenants))]
		q := tenantQuestions[rng.Intn(len(tenantQuestions))]
		return r.post(ctx, "/v1/translate", map[string]any{"database": tenant, "question": q})
	}
	return r.post(ctx, "/v1/translate", map[string]any{"task_id": rng.Intn(r.cfg.Tasks)})
}

func (r *runner) doExecute(ctx context.Context, rng *rand.Rand) (int, error) {
	if len(r.tenants) > 0 {
		tenant := r.tenants[rng.Intn(len(r.tenants))]
		sql := tenantQueries[rng.Intn(len(tenantQueries))]
		return r.post(ctx, "/v1/execute", map[string]any{"database": tenant, "sql": sql})
	}
	t := r.execSQL[rng.Intn(len(r.execSQL))]
	return r.post(ctx, "/v1/execute", map[string]any{"database": t.Database, "sql": t.SQL})
}

func (r *runner) taskIDs(rng *rand.Rand) []int {
	ids := make([]int, r.cfg.BatchSize)
	for i := range ids {
		ids[i] = rng.Intn(r.cfg.Tasks)
	}
	return ids
}

func (r *runner) doBatch(ctx context.Context, rng *rand.Rand) (int, error) {
	if len(r.tenants) > 0 {
		tenant := r.tenants[rng.Intn(len(r.tenants))]
		qs := make([]string, r.cfg.BatchSize)
		for i := range qs {
			qs[i] = tenantQuestions[rng.Intn(len(tenantQuestions))]
		}
		return r.post(ctx, "/v1/batch", map[string]any{"database": tenant, "questions": qs})
	}
	return r.post(ctx, "/v1/batch", map[string]any{"task_ids": r.taskIDs(rng)})
}

func (r *runner) doJobs(ctx context.Context, rng *rand.Rand) (int, error) {
	if len(r.tenants) > 0 {
		tenant := r.tenants[rng.Intn(len(r.tenants))]
		qs := make([]string, r.cfg.BatchSize)
		for i := range qs {
			qs[i] = tenantQuestions[rng.Intn(len(tenantQuestions))]
		}
		return r.post(ctx, "/v1/jobs", map[string]any{"database": tenant, "questions": qs, "label": "loadgen"})
	}
	return r.post(ctx, "/v1/jobs", map[string]any{"task_ids": r.taskIDs(rng), "label": "loadgen"})
}

// discoverExecTargets learns the benchmark databases (and a table each) from
// GET /v1/databases, so /execute traffic needs no hand-configured SQL.
func (r *runner) discoverExecTargets(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.target()+"/v1/databases", nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: discovering databases: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET /v1/databases: %d", resp.StatusCode)
	}
	var dbs []struct {
		Name   string   `json:"name"`
		Tables []string `json:"tables"`
		Source string   `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbs); err != nil {
		return fmt.Errorf("loadgen: decoding /v1/databases: %v", err)
	}
	for _, db := range dbs {
		if db.Source != "benchmark" || len(db.Tables) == 0 {
			continue
		}
		r.execSQL = append(r.execSQL, execTarget{
			Database: db.Name,
			SQL:      "SELECT COUNT(*) FROM " + db.Tables[0],
		})
	}
	if len(r.execSQL) == 0 {
		return fmt.Errorf("loadgen: no benchmark databases discovered for /execute traffic")
	}
	return nil
}

// The synthetic tenant fixture: a tiny shop database whose demo pool doubles
// as the question corpus (the simulated LLM needs the demo oracle, and exact
// demo questions always resolve).
var (
	tenantQuestions = []string{
		"How many items are there?",
		"What is the average price of all items?",
		"List the names of all items.",
	}
	tenantQueries = []string{
		"SELECT COUNT(*) FROM items",
		"SELECT AVG(price) FROM items",
		"SELECT name FROM items ORDER BY price",
	}
)

func tenantRegistration(name string) map[string]any {
	return map[string]any{
		"name": name,
		"tables": []map[string]any{{
			"name":        "items",
			"primary_key": "id",
			"columns": []map[string]any{
				{"name": "id", "type": "number"},
				{"name": "name", "type": "text"},
				{"name": "price", "type": "number"},
			},
			"rows": [][]any{
				{1.0, "anvil", 9.5},
				{2.0, "rope", 3.25},
				{3.0, "lantern", 12.0},
				{4.0, "compass", 27.5},
			},
		}},
		"demos": []map[string]any{
			{"question": tenantQuestions[0], "sql": tenantQueries[0]},
			{"question": tenantQuestions[1], "sql": tenantQueries[1]},
			{"question": tenantQuestions[2], "sql": "SELECT name FROM items"},
		},
	}
}

// RegisterTenant registers the loadgen synthetic tenant fixture under the
// given name against baseURL. Scenario churn and register-storm drivers
// reuse it so the traffic ops' question corpus keeps resolving on whatever
// tenant set a phase leaves behind. Returns the HTTP status without judging
// it (201 created, 409 already there, 429/503 under pressure are all
// interesting to a caller measuring churn).
func RegisterTenant(ctx context.Context, client *http.Client, baseURL, name string) (int, error) {
	data, err := json.Marshal(tenantRegistration(name))
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/databases", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// DeleteTenant unregisters a tenant database; the other half of a churn
// cycle. Returns the HTTP status (204 gone, 404 never there).
func DeleteTenant(ctx context.Context, client *http.Client, baseURL, name string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, baseURL+"/v1/databases/"+name, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// registerTenants registers the synthetic tenants (tolerating 409 from a
// previous run against the same server).
func (r *runner) registerTenants(ctx context.Context) error {
	for i := 0; i < r.cfg.Tenants; i++ {
		name := fmt.Sprintf("loadgen-%d", i)
		status, err := RegisterTenant(ctx, r.cfg.Client, r.target(), name)
		if err != nil {
			return fmt.Errorf("loadgen: registering tenant %s: %v", name, err)
		}
		if status != http.StatusCreated && status != http.StatusConflict {
			return fmt.Errorf("loadgen: registering tenant %s: HTTP %d (is the catalog enabled?)", name, status)
		}
		r.tenants = append(r.tenants, name)
	}
	return nil
}

// report assembles per-op rows plus the "all" aggregate.
func (r *runner) report(elapsed time.Duration) *Report {
	rep := &Report{
		Header:          benchfmt.NewHeader(),
		Mode:            "closed",
		DurationSeconds: elapsed.Seconds(),
		Workers:         r.cfg.Workers,
		Tenants:         r.cfg.Tenants,
		Seed:            r.cfg.Seed,
	}
	if r.cfg.Rate > 0 {
		rep.Mode = "open"
		rep.RateRPS = r.cfg.Rate
		rep.RateEndRPS = r.cfg.RateEnd
	}
	var (
		agg      metrics.HistogramSnapshot
		aggRow   = OpResult{Name: "all"}
		haveBase bool
	)
	for _, name := range r.order {
		st := r.stats[name]
		snap := st.hist.Snapshot()
		row := opRow(st, snap, elapsed)
		rep.Results = append(rep.Results, row)
		aggRow.Requests += row.Requests
		aggRow.Errors += row.Errors
		aggRow.Non2xx += row.Non2xx
		aggRow.Status429 += row.Status429
		aggRow.Dropped += row.Dropped
		if !haveBase {
			agg = snap
			agg.Counts = append([]int64(nil), snap.Counts...)
			haveBase = true
			continue
		}
		for i := range agg.Counts {
			agg.Counts[i] += snap.Counts[i]
		}
		agg.Count += snap.Count
		agg.Sum += snap.Sum
		if snap.Max > agg.Max {
			agg.Max = snap.Max
		}
	}
	aggRow.ThroughputRPS = rps(aggRow.Requests, elapsed)
	aggRow.ErrorRate = errorRate(aggRow)
	aggRow.LatencyMs = latencyMs(agg)
	rep.Results = append(rep.Results, aggRow)
	return rep
}

func opRow(st *opStats, snap metrics.HistogramSnapshot, elapsed time.Duration) OpResult {
	row := OpResult{
		Name:      st.name,
		Requests:  st.requests.Load(),
		Errors:    st.errors.Load(),
		Non2xx:    st.non2xx.Load(),
		Status429: st.status429.Load(),
		Dropped:   st.dropped.Load(),
	}
	row.ThroughputRPS = rps(row.Requests, elapsed)
	row.ErrorRate = errorRate(row)
	row.LatencyMs = latencyMs(snap)
	row.SlowTraces = st.slow.snapshot()
	return row
}

func rps(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// errorRate is the -max-error-rate gate input: transport errors, non-2xx
// responses AND open-loop drops, over the offered load (sent + dropped).
// A dropped dispatch never reaches the latency histogram — it was never
// sent — but the generator shedding load is not a healthy system, so drops
// must not make the error rate look better than the run was.
func errorRate(row OpResult) float64 {
	offered := row.Requests + row.Dropped
	if offered == 0 {
		return 0
	}
	return float64(row.Errors+row.Non2xx+row.Dropped) / float64(offered)
}

func latencyMs(s metrics.HistogramSnapshot) LatencyMs {
	return LatencyMs{
		P50:  s.Quantile(0.50) * 1000,
		P95:  s.Quantile(0.95) * 1000,
		P99:  s.Quantile(0.99) * 1000,
		Mean: s.Mean() * 1000,
		Max:  s.Max * 1000,
	}
}

// WaitReady polls baseURL/healthz until it answers 200 or ctx expires — the
// CI smoke boots the server in the background and must not race its warmup.
func WaitReady(ctx context.Context, client *http.Client, baseURL string) error {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	baseURL = strings.TrimRight(baseURL, "/")
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: server not ready: %w", ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// CheckMetrics scrapes baseURL/v1/metrics, verifies the exposition parses,
// and verifies the server-side http_requests_total sum accounts for at least
// minRequests — the end-to-end proof that the middleware measured the load
// the generator offered.
func CheckMetrics(client *http.Client, baseURL string, minRequests int64) error {
	return CheckMetricsAll(client, strings.Split(baseURL, ","), minRequests)
}

// CheckMetricsAll is the multi-target form of CheckMetrics: with requests
// fanned round-robin across several fronts, each front counted only its
// share, so the accounting proof sums http_requests_total over all of them.
func CheckMetricsAll(client *http.Client, baseURLs []string, minRequests int64) error {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	var total int64
	for _, u := range baseURLs {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		resp, err := client.Get(u + "/v1/metrics")
		if err != nil {
			return fmt.Errorf("loadgen: scraping metrics: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: GET %s/v1/metrics: %d", u, resp.StatusCode)
		}
		if err != nil {
			return err
		}
		samples, err := metrics.ParseExposition(body)
		if err != nil {
			return fmt.Errorf("loadgen: %s/v1/metrics is not valid Prometheus text: %v", u, err)
		}
		total += int64(metrics.SumSamples(samples, "http_requests_total"))
	}
	if total < minRequests {
		return fmt.Errorf("loadgen: servers counted %d requests, expected at least %d", total, minRequests)
	}
	return nil
}
