package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/spider"
	"repro/internal/trace"
)

// The serving substrate is expensive to train; build it once for the package.
var (
	srvOnce   sync.Once
	srvCorpus *spider.Corpus
	srvFB     *catalog.Fallback
)

func testService(t *testing.T) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	srvOnce.Do(func() {
		srvCorpus = spider.GenerateSmall(13, 0.05)
		srvFB = catalog.NewFallback(srvCorpus.Train.Examples)
	})
	cfg := core.DefaultConfig()
	cfg.Consistency = 3
	client := llm.NewSim(llm.ChatGPT)
	cache := llm.NewCache(client, 512)
	cat, err := catalog.New(catalog.Config{Client: client, Fallback: srvFB, Pipeline: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	p := core.New(srvCorpus.Train.Examples, cache, cfg)
	reg := metrics.NewRegistry()
	// Sample 0: the server records only requests arriving with a sampled
	// traceparent, which is exactly what TestTraceSampling asserts. The
	// recent ring is sized far past anything a sub-second run can produce,
	// so every reported slow-trace ID is still resolvable — at the default
	// cap the run's slowest trace can age out before the test fetches it.
	tr := trace.New(trace.Config{Service: "loadgen-test", Sample: 0, Slow: time.Hour, RecentCap: 1 << 16})
	s := service.New(p, srvCorpus,
		service.WithCache(cache),
		service.WithMetrics(reg),
		service.WithCatalog(cat),
		service.WithJobs(jobs.Config{Runners: 1, Queue: 8, TTL: -1}),
		service.WithTracer(tr),
	)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		cat.Close(ctx)
	})
	return srv, reg
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("")
	if err != nil || m != DefaultMix {
		t.Fatalf("empty mix = %+v, %v; want default", m, err)
	}
	m, err = ParseMix("translate=2,execute=1")
	if err != nil || m.Translate != 2 || m.Execute != 1 || m.Batch != 0 || m.Jobs != 0 {
		t.Fatalf("mix = %+v, %v", m, err)
	}
	for _, bad := range []string{"translate", "translate=x", "bogus=1", "translate=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestClosedLoopRun(t *testing.T) {
	srv, _ := testService(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:   srv.URL,
		Duration:  400 * time.Millisecond,
		Workers:   4,
		Mix:       Mix{Translate: 1, Execute: 2, Batch: 1, Jobs: 1},
		Tasks:     4,
		BatchSize: 3,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	if all.Requests == 0 {
		t.Fatal("closed loop produced no requests")
	}
	if all.Errors != 0 || all.Non2xx != 0 {
		t.Fatalf("unexpected failures against a healthy server: %+v", all)
	}
	if rep.Mode != "closed" {
		t.Errorf("mode = %q, want closed", rep.Mode)
	}
	l := all.LatencyMs
	if !(l.P50 <= l.P95 && l.P95 <= l.P99) {
		t.Errorf("percentiles out of order: %+v", l)
	}
	if l.Max <= 0 || l.Mean <= 0 {
		t.Errorf("mean/max must be positive: %+v", l)
	}
	// Per-op rows precede the aggregate and sum to it.
	var sum int64
	seen := map[string]bool{}
	for _, row := range rep.Results {
		if row.Name == "all" {
			continue
		}
		seen[row.Name] = true
		sum += row.Requests
	}
	for _, op := range []string{"translate", "execute", "batch", "jobs"} {
		if !seen[op] {
			t.Errorf("missing row for %s", op)
		}
	}
	if sum != all.Requests {
		t.Errorf("per-op requests %d != aggregate %d", sum, all.Requests)
	}
	// The server-side middleware must account for at least what we sent.
	if err := CheckMetrics(nil, srv.URL, all.Requests); err != nil {
		t.Errorf("metrics self-check: %v", err)
	}
}

func TestOpenLoopRun(t *testing.T) {
	srv, _ := testService(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Duration: 400 * time.Millisecond,
		Rate:     100,
		Mix:      Mix{Execute: 1},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	if rep.Mode != "open" || rep.RateRPS != 100 {
		t.Errorf("mode/rate = %q/%g, want open/100", rep.Mode, rep.RateRPS)
	}
	if all.Requests == 0 {
		t.Fatal("open loop produced no requests")
	}
	// The clock dispatches ~rate*duration requests; allow broad slack for CI
	// timers but catch a loop that free-runs far beyond the configured rate.
	if all.Requests+all.Dropped > 100 {
		t.Errorf("open loop sent %d (+%d dropped), far over rate*duration=40", all.Requests, all.Dropped)
	}
	if all.Errors != 0 || all.Non2xx != 0 {
		t.Fatalf("unexpected failures: %+v", all)
	}
}

func TestTenantFanout(t *testing.T) {
	srv, _ := testService(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Duration: 400 * time.Millisecond,
		Workers:  3,
		Mix:      Mix{Translate: 1, Execute: 1},
		Tenants:  2,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	if all.Requests == 0 {
		t.Fatal("tenant run produced no requests")
	}
	if all.Errors != 0 || all.Non2xx != 0 {
		t.Fatalf("unexpected failures on the tenant path: %+v", all)
	}
	// Re-running against the same server must tolerate the already-registered
	// tenants (409 -> reuse).
	rep, err = Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Duration: 200 * time.Millisecond,
		Workers:  2,
		Mix:      Mix{Execute: 1},
		Tenants:  2,
		Seed:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.All(); got.Non2xx != 0 || got.Errors != 0 {
		t.Fatalf("rerun against existing tenants failed: %+v", got)
	}
}

// TestTraceSampling drives every request with a generator-minted sampled
// traceparent against a server whose own head-sampling is 0, proving the
// edge decision forces recording, the report carries resolvable slow-trace
// IDs, and /v1/traces/{id} returns the span tree for one of them.
func TestTraceSampling(t *testing.T) {
	srv, _ := testService(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Duration:    300 * time.Millisecond,
		Workers:     2,
		Mix:         Mix{Execute: 1},
		TraceSample: 1,
		SlowTraces:  3,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var slow []SlowTrace
	for _, row := range rep.Results {
		if row.Name == "execute" {
			slow = row.SlowTraces
		}
	}
	if len(slow) == 0 {
		t.Fatal("TraceSample=1 produced no slow-trace rows")
	}
	if len(slow) > 1 && slow[0].DurationMs < slow[1].DurationMs {
		t.Errorf("slow traces not sorted slowest-first: %+v", slow)
	}
	resp, err := http.Get(srv.URL + "/v1/traces/" + slow[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d, want 200", slow[0].TraceID, resp.StatusCode)
	}
	var tree trace.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != slow[0].TraceID || len(tree.Spans) == 0 {
		t.Fatalf("trace %s came back as %q with %d spans", slow[0].TraceID, tree.TraceID, len(tree.Spans))
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Duration: time.Second}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x"}); err == nil {
		t.Error("missing Duration accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Duration: time.Second, Rate: -1}); err == nil {
		t.Error("negative Rate accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Duration: time.Second, RateEnd: 50}); err == nil {
		t.Error("RateEnd without an open loop accepted")
	}
}

// stubServer serves just enough of the API surface for an /execute-only run:
// target discovery plus a configurable execute handler.
func stubServer(t *testing.T, execute http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/databases", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]map[string]any{
			{"name": "stub", "tables": []string{"t"}, "source": "benchmark"},
		})
	})
	mux.HandleFunc("POST /v1/execute", execute)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestOpenLoopRamp checks RateEnd turns the dispatch clock into a linear
// ramp: 20->180 rps over the run averages ~100 rps, far from either
// endpoint held constant (20 rps -> ~10 dispatches, 180 rps -> ~90).
func TestOpenLoopRamp(t *testing.T) {
	srv := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Duration: 500 * time.Millisecond,
		Rate:     20,
		RateEnd:  180,
		Mix:      Mix{Execute: 1},
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	total := all.Requests + all.Dropped
	if total < 20 || total > 80 {
		t.Errorf("ramp 20->180 over 500ms dispatched %d, want ~50", total)
	}
	if rep.RateRPS != 20 || rep.RateEndRPS != 180 {
		t.Errorf("report rates = %g->%g, want 20->180", rep.RateRPS, rep.RateEndRPS)
	}
}

// TestDropAccounting pins the open-loop shed semantics: dropped dispatches
// never reach the latency histogram (they were never sent) but they do
// count against the error-rate gate over the offered load.
func TestDropAccounting(t *testing.T) {
	srv := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(40 * time.Millisecond)
		w.Write([]byte(`{}`))
	})
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Duration:    400 * time.Millisecond,
		Rate:        300,
		MaxInFlight: 1,
		Mix:         Mix{Execute: 1},
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	if all.Dropped == 0 {
		t.Fatal("MaxInFlight=1 against a 40ms handler at 300rps shed nothing")
	}
	if all.Errors != 0 || all.Non2xx != 0 {
		t.Fatalf("stub produced failures: %+v", all)
	}
	want := float64(all.Dropped) / float64(all.Requests+all.Dropped)
	if all.ErrorRate != want {
		t.Errorf("ErrorRate = %g, want drops/offered = %g", all.ErrorRate, want)
	}
	// The histogram saw only the sent requests: with a 40ms floor per call
	// every observed latency is real, and drops (instantaneous if counted)
	// would have dragged the minimum toward zero.
	if all.Requests > 0 && all.LatencyMs.P50 < 30 {
		t.Errorf("p50 = %gms; drops leaked into the latency histogram", all.LatencyMs.P50)
	}
}

func TestErrorRateFormula(t *testing.T) {
	cases := []struct {
		row  OpResult
		want float64
	}{
		{OpResult{}, 0},
		{OpResult{Requests: 80, Dropped: 20}, 0.2},
		{OpResult{Dropped: 5}, 1},
		{OpResult{Requests: 10, Errors: 1, Non2xx: 1}, 0.2},
		{OpResult{Requests: 6, Errors: 1, Non2xx: 1, Dropped: 2}, 0.5},
	}
	for _, c := range cases {
		if got := errorRate(c.row); got != c.want {
			t.Errorf("errorRate(%+v) = %g, want %g", c.row, got, c.want)
		}
	}
}

// Test429Counting: 429 responses are tallied both as Non2xx and in the
// Status429 subset scenario SLOs gate on.
func Test429Counting(t *testing.T) {
	srv := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Duration: 200 * time.Millisecond,
		Workers:  2,
		Mix:      Mix{Execute: 1},
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	if all.Status429 == 0 || all.Status429 != all.Non2xx {
		t.Fatalf("Status429 = %d, Non2xx = %d; want equal and positive", all.Status429, all.Non2xx)
	}
	if all.ErrorRate != 1 {
		t.Errorf("all-429 run ErrorRate = %g, want 1", all.ErrorRate)
	}
}
