package loadgen

// Multi-target fan-out and the process-wide pooled transport.

import (
	"context"
	"testing"
	"time"
)

// TestMultiTargetRoundRobin drives one run against two fronts and checks
// both actually served traffic, including the summed accounting proof.
func TestMultiTargetRoundRobin(t *testing.T) {
	srv1, _ := testService(t)
	srv2, _ := testService(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv1.URL + " , " + srv2.URL + "/",
		Duration: 400 * time.Millisecond,
		Workers:  4,
		Mix:      Mix{Translate: 1},
		Tasks:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rep.All()
	if all.Requests == 0 || all.Errors > 0 || all.Non2xx > 0 {
		t.Fatalf("aggregate row %+v, want clean traffic", all)
	}
	for i, srv := range []string{srv1.URL, srv2.URL} {
		if err := CheckMetrics(nil, srv, 1); err != nil {
			t.Errorf("front %d served no traffic: %v", i, err)
		}
	}
	if err := CheckMetricsAll(nil, []string{srv1.URL, srv2.URL}, all.Requests); err != nil {
		t.Errorf("summed accounting across fronts fell short: %v", err)
	}
}

// TestPooledClientRatchets pins the upgrade-only sizing of the shared
// transport: a larger bound grows the per-host cap, a smaller one must not
// shrink it back under a bigger concurrent run.
func TestPooledClientRatchets(t *testing.T) {
	c1 := pooledClient(512, time.Second)
	if got := sharedTr.MaxIdleConnsPerHost; got < 512 {
		t.Fatalf("per-host idle cap = %d after bound 512", got)
	}
	high := sharedTr.MaxIdleConnsPerHost
	c2 := pooledClient(8, time.Second)
	if got := sharedTr.MaxIdleConnsPerHost; got != high {
		t.Fatalf("smaller run shrank the shared pool: %d -> %d", high, got)
	}
	if c1.Transport != c2.Transport {
		t.Fatal("runs are not sharing one transport")
	}
}
